//! HTTP routes over the live snapshot: metrics, incidents, traces,
//! specs, machines, ad-hoc SQL, and operator actions.
//!
//! Every GET handler reads one [`LiveSnapshot`](crate::state::LiveSnapshot)
//! `Arc` and never touches the harness; every operator POST enqueues into
//! the [`ActionQueue`](crate::state::ActionQueue) for deterministic
//! application at the next tick boundary. Handlers therefore cannot
//! perturb tick ordering no matter how hard they are driven.
//!
//! The unbounded-cardinality endpoints (`/incidents`, `/debug/events`,
//! `POST /query`) answer with `Transfer-Encoding: chunked` bodies
//! produced element by element: the chunk iterator owns the snapshot
//! `Arc` and is pulled as the socket drains, so a large result set
//! never materializes as one contiguous buffer and a slow client
//! backpressures its own connection only.
//!
//! Mutating endpoints (`POST /query`, `POST /actions/*`) can be gated
//! behind a shared-secret token ([`Router::with_auth_token`]): clients
//! present it as `Authorization: Bearer <token>` or `X-Auth-Token`, the
//! comparison is constant-time, and a missing or wrong token answers
//! `401` before any handler state is touched.

use std::fmt::Write as _;
use std::sync::Arc;

use cpi2::core::TraceId;
use cpi2::pipeline::query::{Dataset, QueryResult, Value};
use cpi2::telemetry::Event;
use serde_json;

use crate::server::{Request, Response};
use crate::state::{OperatorAction, SharedState};

/// The route table: one instance serves every shard thread.
#[derive(Debug)]
pub struct Router {
    state: Arc<SharedState>,
    auth_token: Option<Vec<u8>>,
}

impl Router {
    /// Creates a router over the shared state (no auth required).
    pub fn new(state: Arc<SharedState>) -> Router {
        Router {
            state,
            auth_token: None,
        }
    }

    /// Requires `token` (when `Some`) on mutating endpoints.
    pub fn with_auth_token(mut self, token: Option<String>) -> Router {
        self.auth_token = token.map(String::into_bytes);
        self
    }

    /// Dispatches one request.
    pub fn handle(&self, req: &Request) -> Response {
        let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segs.as_slice()) {
            ("GET", []) => self.index(),
            ("GET", ["healthz"]) => Response::text(200, "ok\n"),
            ("GET", ["version"]) => self.version(),
            ("GET", ["metrics"]) => self.metrics_text(),
            ("GET", ["metrics.json"]) => self.metrics_json(),
            ("GET", ["incidents"]) => self.incidents(),
            ("GET", ["incidents", id, "trace"]) => self.incident_trace(id),
            ("GET", ["specs", job]) => self.specs(job),
            ("GET", ["machines", id]) => self.machine(id),
            ("GET", ["debug", "events"]) => self.events(),
            ("POST", ["query"]) if !self.authorized(req) => unauthorized(),
            ("POST", ["actions", _]) if !self.authorized(req) => unauthorized(),
            ("POST", ["query"]) => self.query(req),
            ("POST", ["actions", action]) => self.action(action, req),
            ("POST", _) => Response::error(404, "unknown route"),
            ("GET", _) => Response::error(404, "unknown route"),
            _ => Response::error(405, "method not allowed"),
        }
    }

    /// Whether the request carries the configured shared secret (always
    /// true when no token is configured). Constant-time comparison.
    fn authorized(&self, req: &Request) -> bool {
        let Some(expected) = &self.auth_token else {
            return true;
        };
        let presented = req
            .header("authorization")
            .and_then(|v| v.strip_prefix("Bearer "))
            .or_else(|| req.header("x-auth-token"));
        match presented {
            Some(tok) => constant_time_eq(tok.as_bytes(), expected),
            None => false,
        }
    }

    fn index(&self) -> Response {
        Response::text(
            200,
            "cpi2-serve — resident CPI² observability & control plane\n\
             GET  /healthz /version /metrics /metrics.json\n\
             GET  /incidents /incidents/{id}/trace /specs/{job} /machines/{id} /debug/events\n\
             POST /query                       (body: SQL over incidents|machines|specs|samples)\n\
             POST /actions/cap?job=&index=&rate=&secs=\n\
             POST /actions/uncap?job=&index=\n\
             POST /actions/kill-restart?job=&index=\n\
             POST /actions/protection?enabled=true|false\n",
        )
    }

    fn version(&self) -> Response {
        let snap = self.state.live.snapshot();
        Response::json(format!(
            "{{\"name\":\"cpi2-serve\",\"version\":\"{}\",\"now_us\":{},\"ticks\":{},\"spec_version\":{},\"protection_enabled\":{}}}",
            env!("CARGO_PKG_VERSION"),
            snap.now_us,
            snap.ticks,
            snap.spec_version,
            snap.protection_enabled
        ))
    }

    fn metrics_text(&self) -> Response {
        match self.state.telemetry.prometheus_text() {
            Some(text) => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: crate::http::Body::Full(text.into_bytes()),
            },
            None => Response::error(503, "telemetry disabled"),
        }
    }

    fn metrics_json(&self) -> Response {
        match self.state.telemetry.json_snapshot() {
            Some(json) => Response::json(json),
            None => Response::error(503, "telemetry disabled"),
        }
    }

    fn incidents(&self) -> Response {
        let snap = self.state.live.snapshot();
        let n = snap.incidents.len();
        stream_json_array((0..n).map(move |i| {
            serde_json::to_string(&snap.incidents[i]).unwrap_or_else(|_| "null".into())
        }))
    }

    fn incident_trace(&self, id: &str) -> Response {
        if TraceId::parse(id).is_none() {
            return Response::error(400, "trace id must be 16 hex digits");
        }
        let snap = self.state.live.snapshot();
        match snap.traces.iter().find(|t| t.trace == id) {
            Some(trace) => match serde_json::to_string(trace) {
                Ok(json) => Response::json(json),
                Err(_) => Response::error(500, "serialization failed"),
            },
            None => Response::error(404, "no such trace (evicted or never recorded)"),
        }
    }

    fn specs(&self, job: &str) -> Response {
        let snap = self.state.live.snapshot();
        let matching: Vec<_> = snap
            .specs
            .iter()
            .filter(|s| s.jobname == job)
            .cloned()
            .collect();
        if matching.is_empty() {
            return Response::error(404, "no spec published for that job");
        }
        match serde_json::to_string(&matching) {
            Ok(json) => Response::json(json),
            Err(_) => Response::error(500, "serialization failed"),
        }
    }

    fn machine(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u32>() else {
            return Response::error(400, "machine id must be an integer");
        };
        let snap = self.state.live.snapshot();
        match snap.machines.iter().find(|m| m.id == id) {
            Some(m) => match serde_json::to_string(m) {
                Ok(json) => Response::json(json),
                Err(_) => Response::error(500, "serialization failed"),
            },
            None => Response::error(404, "no such machine"),
        }
    }

    fn events(&self) -> Response {
        let events = self.state.telemetry.recent_events();
        stream_json_array(events.into_iter().map(|e| event_json(&e)))
    }

    fn query(&self, req: &Request) -> Response {
        let Ok(sql) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "query body must be UTF-8 SQL");
        };
        if sql.trim().is_empty() {
            return Response::error(400, "empty query");
        }
        let snap = self.state.live.snapshot();
        let mut ds = Dataset::new();
        let loaded = ds
            .insert_records("incidents", &snap.incidents)
            .and_then(|()| ds.insert_records("machines", &snap.machines))
            .and_then(|()| ds.insert_records("specs", &snap.specs))
            .and_then(|()| ds.insert_records("samples", &snap.samples));
        if loaded.is_err() {
            return Response::error(500, "failed to build query tables");
        }
        match ds.query(sql) {
            Ok(result) => stream_query_result(result),
            Err(e) => Response::error(400, &format!("{e:?}")),
        }
    }

    fn action(&self, action: &str, req: &Request) -> Response {
        let parsed = match action {
            "cap" => {
                let (Some(job), Some(index), Some(rate)) = (
                    req.param("job").and_then(|v| v.parse::<u32>().ok()),
                    req.param("index").and_then(|v| v.parse::<u32>().ok()),
                    req.param("rate").and_then(|v| v.parse::<f64>().ok()),
                ) else {
                    return Response::error(400, "cap needs job=<u32>&index=<u32>&rate=<f64>");
                };
                if !(rate > 0.0 && rate.is_finite()) {
                    return Response::error(400, "rate must be a positive number");
                }
                let secs = req
                    .param("secs")
                    .and_then(|v| v.parse::<i64>().ok())
                    .unwrap_or(300)
                    .max(1);
                OperatorAction::Cap {
                    job,
                    index,
                    rate,
                    duration_us: secs.saturating_mul(1_000_000),
                }
            }
            "uncap" | "kill-restart" => {
                let (Some(job), Some(index)) = (
                    req.param("job").and_then(|v| v.parse::<u32>().ok()),
                    req.param("index").and_then(|v| v.parse::<u32>().ok()),
                ) else {
                    return Response::error(400, "action needs job=<u32>&index=<u32>");
                };
                if action == "uncap" {
                    OperatorAction::Uncap { job, index }
                } else {
                    OperatorAction::KillRestart { job, index }
                }
            }
            "protection" => match req.param("enabled") {
                Some("true") => OperatorAction::SetProtection(true),
                Some("false") => OperatorAction::SetProtection(false),
                _ => return Response::error(400, "protection needs enabled=true|false"),
            },
            _ => return Response::error(404, "unknown action"),
        };
        let seq = self.state.actions.push(parsed);
        Response {
            status: 202,
            content_type: "application/json",
            body: crate::http::Body::Full(
                format!(
                    "{{\"accepted\":{seq},\"pending\":{},\"applies\":\"next tick\"}}",
                    self.state.actions.pending()
                )
                .into_bytes(),
            ),
        }
    }
}

/// The `401` every gated endpoint answers without a valid token.
fn unauthorized() -> Response {
    Response::error(401, "missing or invalid auth token")
}

/// A chunked `200` JSON array: `[` + comma-joined items + `]`, one
/// chunk per item, pulled as the client's socket drains.
fn stream_json_array<I>(items: I) -> Response
where
    I: Iterator<Item = String> + Send + 'static,
{
    let mut first = true;
    let body = std::iter::once(b"[".to_vec())
        .chain(items.map(move |item| {
            let mut chunk = Vec::with_capacity(item.len() + 1);
            if first {
                first = false;
            } else {
                chunk.push(b',');
            }
            chunk.extend_from_slice(item.as_bytes());
            chunk
        }))
        .chain(std::iter::once(b"]".to_vec()));
    Response::chunked("application/json", Box::new(body))
}

/// One `/debug/events` element.
fn event_json(e: &Event) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"at_us\":{},\"kind\":{},\"detail\":{}}}",
        e.at_us,
        jstr(&e.kind),
        jstr(&e.detail)
    );
    out
}

/// Streams a query result as `{"columns": [...], "rows": [[...]]}`,
/// one chunk per row.
fn stream_query_result(r: QueryResult) -> Response {
    let mut head = String::from("{\"columns\":[");
    for (i, c) in r.columns.iter().enumerate() {
        if i > 0 {
            head.push(',');
        }
        head.push_str(&jstr(c));
    }
    head.push_str("],\"rows\":[");
    let mut first = true;
    let body = std::iter::once(head.into_bytes())
        .chain(r.rows.into_iter().map(move |row| {
            let mut out = String::new();
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push('[');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                render_value(&mut out, v);
            }
            out.push(']');
            out.into_bytes()
        }))
        .chain(std::iter::once(b"]}".to_vec()));
    Response::chunked("application/json", Box::new(body))
}

/// One JSON scalar of a query row.
fn render_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) if n.is_finite() => {
            let _ = write!(out, "{n}");
        }
        Value::Num(_) => out.push_str("null"),
        Value::Str(s) => out.push_str(&jstr(s)),
    }
}

/// Constant-time byte-string equality: examines every byte of the
/// presented token regardless of where the first mismatch is, so the
/// comparison leaks no prefix-length timing signal.
fn constant_time_eq(presented: &[u8], expected: &[u8]) -> bool {
    let mut diff = presented.len() ^ expected.len();
    for (i, b) in presented.iter().enumerate() {
        let e = if expected.is_empty() {
            0
        } else {
            expected[i % expected.len()]
        };
        diff |= usize::from(b ^ e);
    }
    diff == 0
}

/// JSON string literal with escaping.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{LiveSnapshot, MachineView};
    use cpi2::telemetry::Telemetry;

    fn router() -> Router {
        let state = SharedState::new(Telemetry::enabled());
        state.live.publish(LiveSnapshot {
            ticks: 3,
            now_us: 60_000_000,
            machines: vec![MachineView {
                id: 0,
                tasks: 2,
                threads: 4,
                utilization: 0.5,
                throttle_events: 0,
                task_list: Vec::new(),
            }],
            ..LiveSnapshot::default()
        });
        Router::new(state)
    }

    fn get(router: &Router, path: &str) -> Response {
        router.handle(&Request {
            method: "GET".into(),
            path: path.into(),
            ..Request::default()
        })
    }

    #[test]
    fn basic_routes_respond() {
        let r = router();
        assert_eq!(get(&r, "/healthz").status, 200);
        assert_eq!(get(&r, "/version").status, 200);
        assert_eq!(get(&r, "/metrics").status, 200);
        assert_eq!(get(&r, "/metrics.json").status, 200);
        assert_eq!(get(&r, "/incidents").status, 200);
        assert_eq!(get(&r, "/machines/0").status, 200);
        assert_eq!(get(&r, "/machines/99").status, 404);
        assert_eq!(get(&r, "/machines/zero").status, 400);
        assert_eq!(get(&r, "/specs/nothing").status, 404);
        assert_eq!(get(&r, "/nope").status, 404);
        assert_eq!(get(&r, "/incidents/zzz/trace").status, 400);
        assert_eq!(get(&r, "/incidents/00000000000000ab/trace").status, 404);
    }

    #[test]
    fn query_endpoint_runs_sql() {
        let r = router();
        let resp = r.handle(&Request {
            method: "POST".into(),
            path: "/query".into(),
            body: b"SELECT id, utilization FROM machines".to_vec(),
            ..Request::default()
        });
        assert_eq!(resp.status, 200);
        assert!(
            matches!(resp.body, crate::http::Body::Chunks(_)),
            "query results stream"
        );
        let body = String::from_utf8(resp.into_body_bytes()).unwrap();
        assert!(
            body.contains("\"columns\":[\"id\",\"utilization\"]"),
            "{body}"
        );
        assert!(body.contains("[0,0.5]"), "{body}");
        // Bad SQL is a client error, not a panic.
        let resp = r.handle(&Request {
            method: "POST".into(),
            path: "/query".into(),
            body: b"SELEKT nope".to_vec(),
            ..Request::default()
        });
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn incidents_and_events_stream_valid_json() {
        let r = router();
        let resp = get(&r, "/incidents");
        assert_eq!(resp.status, 200);
        assert!(matches!(resp.body, crate::http::Body::Chunks(_)));
        let body = String::from_utf8(resp.into_body_bytes()).unwrap();
        assert_eq!(body, "[]", "empty incident tail renders as []");
        let resp = get(&r, "/debug/events");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.into_body_bytes()).unwrap();
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
    }

    #[test]
    fn auth_token_gates_mutating_endpoints() {
        let state = SharedState::new(Telemetry::enabled());
        state.live.publish(LiveSnapshot::default());
        let r = Router::new(state).with_auth_token(Some("sekrit".into()));

        // GETs stay open.
        assert_eq!(get(&r, "/healthz").status, 200);
        assert_eq!(get(&r, "/incidents").status, 200);

        let post = |headers: Vec<(String, String)>| {
            r.handle(&Request {
                method: "POST".into(),
                path: "/actions/protection".into(),
                query: vec![("enabled".into(), "false".into())],
                headers,
                ..Request::default()
            })
        };
        assert_eq!(post(vec![]).status, 401, "missing token");
        assert_eq!(
            post(vec![("authorization".into(), "Bearer wrong".into())]).status,
            401,
            "wrong token"
        );
        assert_eq!(r.state.actions.pending(), 0, "nothing enqueued while 401");
        assert_eq!(
            post(vec![("authorization".into(), "Bearer sekrit".into())]).status,
            202
        );
        assert_eq!(
            post(vec![("x-auth-token".into(), "sekrit".into())]).status,
            202,
            "X-Auth-Token works too"
        );
        // /query is gated the same way.
        let resp = r.handle(&Request {
            method: "POST".into(),
            path: "/query".into(),
            body: b"SELECT id FROM machines".to_vec(),
            ..Request::default()
        });
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn constant_time_eq_compares_correctly() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(!constant_time_eq(b"", b"x"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn actions_enqueue_for_next_tick() {
        let r = router();
        let resp = r.handle(&Request {
            method: "POST".into(),
            path: "/actions/cap".into(),
            query: vec![
                ("job".into(), "3".into()),
                ("index".into(), "1".into()),
                ("rate".into(), "0.1".into()),
                ("secs".into(), "60".into()),
            ],
            ..Request::default()
        });
        assert_eq!(resp.status, 202);
        assert_eq!(r.state.actions.pending(), 1);
        assert_eq!(
            r.state.actions.drain(),
            vec![OperatorAction::Cap {
                job: 3,
                index: 1,
                rate: 0.1,
                duration_us: 60_000_000,
            }]
        );
        // Missing params are rejected without enqueueing.
        let resp = r.handle(&Request {
            method: "POST".into(),
            path: "/actions/cap".into(),
            ..Request::default()
        });
        assert_eq!(resp.status, 400);
        assert_eq!(r.state.actions.pending(), 0);
    }
}
