//! A dependency-free HTTP/1.1 keep-alive server on `std::net`.
//!
//! Deliberately minimal — the rest of the workspace hand-rolls its
//! infrastructure (channels, locks, serde stand-ins) and the control
//! plane is no exception: no hyper, no tokio, no mio. The shape is
//! sharded accept over a readiness event loop:
//!
//! - [`start`] binds one non-blocking listener and spawns `cfg.shards`
//!   shard threads, each polling its own clone of the listener plus its
//!   private connection registry via `poll(2)`
//!   ([`eventloop`](crate::eventloop)); a connection lives its whole
//!   life on one shard;
//! - connections are keep-alive with pipelining, per-connection read
//!   and write buffers, idle reaping, and a max-requests cap; header
//!   and body ceilings and read/write deadlines bound what a stalled or
//!   malicious client can hold;
//! - over `max_connections`, new clients get `503` immediately instead
//!   of queueing unboundedly (back-pressure by refusal, like the
//!   collector);
//! - handlers run under `catch_unwind`: a panicking route answers `500`
//!   and the shard lives on.
//!
//! This module (with [`eventloop`](crate::eventloop) and
//! [`harness`](crate::harness)) is the crate's only sanctioned home for
//! wall clocks and `thread::spawn` — the lint scoping in `cpi2-lint`
//! enforces that; routes and state stay deterministic-friendly.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use cpi2::telemetry::{Counter, Gauge, Histo, Telemetry};

pub use crate::http::{Body, ChunkIter, Request, Response};

/// Server tuning knobs. Defaults are sized for an operator console, not
/// a public ingress.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Accept/connection shard threads.
    pub shards: usize,
    /// Server-wide open-connection ceiling; beyond it clients get `503`.
    pub max_connections: usize,
    /// A partially-received request must complete within this, ms
    /// (`408` beyond). Also bounds connections that never send a byte.
    pub read_timeout_ms: u64,
    /// A response write may stall (client not draining) at most this, ms.
    pub write_timeout_ms: u64,
    /// Idle keep-alive connections are reaped after this, ms.
    pub keep_alive_idle_ms: u64,
    /// Requests served per connection before it is retired with
    /// `Connection: close`.
    pub max_requests_per_conn: u32,
    /// Request line + headers ceiling, bytes (`431` beyond).
    pub max_header_bytes: usize,
    /// Body ceiling, bytes (`413` beyond).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            max_connections: 1024,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            keep_alive_idle_ms: 30_000,
            max_requests_per_conn: 1024,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// The request handler: borrowed request in, owned response out.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync + 'static>;

/// Endpoint label for the per-endpoint duration histogram. A closed set
/// (unknown paths collapse to `other`) so metric cardinality is bounded
/// no matter what clients request.
pub(crate) fn endpoint_label(path: &str) -> &'static str {
    let mut segs = path.split('/').filter(|s| !s.is_empty());
    match (segs.next(), segs.next(), segs.next()) {
        (None, _, _) => "root",
        (Some("healthz"), None, _) => "healthz",
        (Some("version"), None, _) => "version",
        (Some("metrics"), None, _) => "metrics",
        (Some("metrics.json"), None, _) => "metrics_json",
        (Some("incidents"), None, _) => "incidents",
        (Some("incidents"), Some(_), Some("trace")) => "incident_trace",
        (Some("specs"), Some(_), None) => "specs",
        (Some("machines"), Some(_), None) => "machines",
        (Some("debug"), Some("events"), None) => "debug_events",
        (Some("query"), None, _) => "query",
        (Some("actions"), Some(_), None) => "actions",
        _ => "other",
    }
}

/// The endpoint labels pre-registered for duration histograms; must
/// cover everything [`endpoint_label`] can return.
const ENDPOINT_LABELS: [&str; 13] = [
    "root",
    "healthz",
    "version",
    "metrics",
    "metrics_json",
    "incidents",
    "incident_trace",
    "specs",
    "machines",
    "debug_events",
    "query",
    "actions",
    "other",
];

/// Request/response counters and latency histograms, all registered up
/// front with literal names.
#[derive(Debug, Clone, Default)]
pub(crate) struct ServerMetrics {
    pub(crate) requests_total: Counter,
    pub(crate) responses_2xx: Counter,
    pub(crate) responses_4xx: Counter,
    pub(crate) responses_5xx: Counter,
    pub(crate) rejected_total: Counter,
    pub(crate) disconnects_total: Counter,
    pub(crate) panics_total: Counter,
    pub(crate) open_connections: Gauge,
    /// Per-endpoint handler latency, µs, keyed by [`ENDPOINT_LABELS`].
    durations: Vec<(&'static str, Histo)>,
}

impl ServerMetrics {
    fn new(telemetry: &Telemetry) -> ServerMetrics {
        ServerMetrics {
            requests_total: telemetry.counter("cpi_serve_requests_total", &[]),
            responses_2xx: telemetry.counter("cpi_serve_responses_total", &[("class", "2xx")]),
            responses_4xx: telemetry.counter("cpi_serve_responses_total", &[("class", "4xx")]),
            responses_5xx: telemetry.counter("cpi_serve_responses_total", &[("class", "5xx")]),
            rejected_total: telemetry.counter("cpi_serve_rejected_total", &[]),
            disconnects_total: telemetry.counter("cpi_serve_disconnects_total", &[]),
            panics_total: telemetry.counter("cpi_serve_handler_panics_total", &[]),
            open_connections: telemetry.gauge("cpi_serve_open_connections", &[]),
            durations: ENDPOINT_LABELS
                .iter()
                .map(|&ep| {
                    (
                        ep,
                        telemetry.histogram("cpi_serve_request_duration_us", &[("endpoint", ep)]),
                    )
                })
                .collect(),
        }
    }

    pub(crate) fn count_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }

    /// The duration histogram for an [`endpoint_label`] value.
    pub(crate) fn duration(&self, label: &'static str) -> &Histo {
        self.durations
            .iter()
            .find(|(ep, _)| *ep == label)
            .or_else(|| self.durations.last())
            .map(|(_, h)| h)
            .expect("ENDPOINT_LABELS is non-empty")
    }
}

/// A running server; dropping it without [`shutdown`](Self::shutdown)
/// detaches the threads (they exit with the process).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (useful with a `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drops connections, joins every shard.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves `handler` until shutdown.
///
/// # Errors
///
/// Propagates bind failures.
pub fn start(
    addr: &str,
    cfg: ServerConfig,
    telemetry: &Telemetry,
    handler: Handler,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    // `bind` listens with a backlog of 128; re-listen deeper so an
    // accept burst from a full client fleet (or a reconnect storm in
    // one-request-per-connection mode) queues instead of stalling each
    // overflowed SYN in a ~1 s kernel retransmit.
    {
        use std::os::unix::io::AsRawFd;
        let backlog = cfg.max_connections.clamp(128, 4096) as libc::c_int;
        let rc = unsafe { libc::listen(listener.as_raw_fd(), backlog) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    let local = listener.local_addr()?;
    let metrics = ServerMetrics::new(telemetry);
    let shutdown = Arc::new(AtomicBool::new(false));
    let conn_count = Arc::new(AtomicUsize::new(0));

    let mut threads = Vec::with_capacity(cfg.shards.max(1));
    for _ in 0..cfg.shards.max(1) {
        let listener = listener.try_clone()?;
        let handler = Arc::clone(&handler);
        let metrics = metrics.clone();
        let shutdown = Arc::clone(&shutdown);
        let conn_count = Arc::clone(&conn_count);
        threads.push(thread::spawn(move || {
            crate::eventloop::shard_loop(listener, handler, metrics, cfg, shutdown, conn_count);
        }));
    }

    Ok(ServerHandle {
        addr: local,
        shutdown,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    fn echo_server(cfg: ServerConfig) -> ServerHandle {
        let telemetry = Telemetry::disabled();
        let handler: Handler =
            Arc::new(|req: &Request| Response::text(200, format!("you asked for {}", req.path)));
        start("127.0.0.1:0", cfg, &telemetry, handler).expect("bind")
    }

    #[test]
    fn endpoint_labels_are_a_closed_set() {
        assert_eq!(endpoint_label("/"), "root");
        assert_eq!(endpoint_label("/metrics"), "metrics");
        assert_eq!(endpoint_label("/incidents"), "incidents");
        assert_eq!(endpoint_label("/incidents/7/trace"), "incident_trace");
        assert_eq!(endpoint_label("/specs/3"), "specs");
        assert_eq!(endpoint_label("/machines/12"), "machines");
        assert_eq!(endpoint_label("/debug/events"), "debug_events");
        assert_eq!(endpoint_label("/query"), "query");
        assert_eq!(endpoint_label("/actions/cap"), "actions");
        assert_eq!(endpoint_label("/../../etc/passwd"), "other");
        for path in ["/", "/metrics", "/nope", "/actions/cap"] {
            assert!(ENDPOINT_LABELS.contains(&endpoint_label(path)));
        }
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = echo_server(ServerConfig::default());
        let mut sock = TcpStream::connect(server.addr()).expect("connect");
        for i in 0..5 {
            sock.write_all(format!("GET /r{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .expect("write");
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                match crate::http::scan_response(&buf) {
                    crate::http::ScannedResponse::Partial => {
                        let n = sock.read(&mut chunk).expect("read");
                        assert!(n > 0, "server closed a keep-alive connection");
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    crate::http::ScannedResponse::Complete { status, .. } => {
                        assert_eq!(status, 200);
                        break;
                    }
                    crate::http::ScannedResponse::Malformed => panic!("malformed response"),
                }
            }
            let text = String::from_utf8_lossy(&buf);
            assert!(text.contains("Connection: keep-alive"), "{text}");
            assert!(text.contains(&format!("you asked for /r{i}")), "{text}");
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = echo_server(ServerConfig::default());
        let mut sock = TcpStream::connect(server.addr()).expect("connect");
        // Three requests in one write; the last asks to close.
        sock.write_all(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .expect("write");
        let mut all = String::new();
        sock.read_to_string(&mut all).expect("read to EOF");
        let a = all.find("you asked for /a").expect("first response");
        let b = all.find("you asked for /b").expect("second response");
        let c = all.find("you asked for /c").expect("third response");
        assert!(a < b && b < c, "responses out of order: {all}");
        assert_eq!(all.matches("HTTP/1.1 200 OK").count(), 3);
        server.shutdown();
    }

    #[test]
    fn max_requests_per_conn_retires_the_connection() {
        let cfg = ServerConfig {
            max_requests_per_conn: 2,
            ..ServerConfig::default()
        };
        let server = echo_server(cfg);
        let mut sock = TcpStream::connect(server.addr()).expect("connect");
        sock.write_all(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n")
            .expect("write");
        let mut all = String::new();
        sock.read_to_string(&mut all).expect("read to EOF");
        assert_eq!(all.matches("HTTP/1.1 200 OK").count(), 2);
        assert!(
            all.contains("Connection: close"),
            "final response should close: {all}"
        );
        server.shutdown();
    }
}
