//! A dependency-free HTTP/1.1 server on `std::net::TcpListener`.
//!
//! Deliberately minimal — the rest of the workspace hand-rolls its
//! infrastructure (channels, locks, serde stand-ins) and the control
//! plane is no exception: no hyper, no tokio, no event loop. The shape
//! is a bounded worker pool fed by an accept thread:
//!
//! - the accept thread `try_send`s connections into a bounded channel;
//!   a full channel answers `503` immediately instead of queueing
//!   unboundedly (back-pressure by refusal, like the collector);
//! - each worker reads exactly one request (`Connection: close`), with
//!   hard ceilings on header and body size and per-socket read/write
//!   timeouts, so a stalled or malicious client can pin at most one
//!   worker for one timeout;
//! - handlers run under `catch_unwind`: a panicking route answers `500`
//!   and the worker lives on.
//!
//! This module (with [`harness`](crate::harness)) is the crate's only
//! sanctioned home for wall clocks and `thread::spawn` — the lint
//! scoping in `cpi2-lint` enforces that; routes and state stay
//! deterministic-friendly.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use cpi2::telemetry::{Counter, Gauge, Telemetry};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

/// Server tuning knobs. Defaults are sized for an operator console, not
/// a public ingress.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted-connection queue length; beyond it clients get `503`.
    pub accept_queue: usize,
    /// Per-socket read timeout, ms.
    pub read_timeout_ms: u64,
    /// Per-socket write timeout, ms.
    pub write_timeout_ms: u64,
    /// Request line + headers ceiling, bytes (`431` beyond).
    pub max_header_bytes: usize,
    /// Body ceiling, bytes (`413` beyond).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            accept_queue: 64,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Query parameters in order of appearance (no percent-decoding:
    /// every parameter this API takes is numeric or a plain token).
    pub query: Vec<(String, String)>,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error `{"error": ...}` with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":\"");
        for c in message.chars() {
            match c {
                '"' => body.push_str("\\\""),
                '\\' => body.push_str("\\\\"),
                '\n' => body.push_str("\\n"),
                c => body.push(c),
            }
        }
        body.push_str("\"}");
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }
}

/// The request handler: borrowed request in, owned response out.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync + 'static>;

/// Request/response counters, all registered up front with literal names.
#[derive(Debug, Clone, Default)]
struct ServerMetrics {
    requests_total: Counter,
    responses_2xx: Counter,
    responses_4xx: Counter,
    responses_5xx: Counter,
    rejected_total: Counter,
    disconnects_total: Counter,
    panics_total: Counter,
    queue_depth: Gauge,
}

impl ServerMetrics {
    fn new(telemetry: &Telemetry) -> ServerMetrics {
        ServerMetrics {
            requests_total: telemetry.counter("cpi_serve_requests_total", &[]),
            responses_2xx: telemetry.counter("cpi_serve_responses_total", &[("class", "2xx")]),
            responses_4xx: telemetry.counter("cpi_serve_responses_total", &[("class", "4xx")]),
            responses_5xx: telemetry.counter("cpi_serve_responses_total", &[("class", "5xx")]),
            rejected_total: telemetry.counter("cpi_serve_rejected_total", &[]),
            disconnects_total: telemetry.counter("cpi_serve_disconnects_total", &[]),
            panics_total: telemetry.counter("cpi_serve_handler_panics_total", &[]),
            queue_depth: telemetry.gauge("cpi_serve_accept_queue_depth", &[]),
        }
    }

    fn count_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }
}

/// A running server; dropping it without [`shutdown`](Self::shutdown)
/// detaches the threads (they exit with the process).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (useful with a `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight work, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves `handler` until shutdown.
///
/// # Errors
///
/// Propagates bind failures.
pub fn start(
    addr: &str,
    cfg: ServerConfig,
    telemetry: &Telemetry,
    handler: Handler,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let metrics = ServerMetrics::new(telemetry);
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(cfg.accept_queue.max(1));

    let mut threads = Vec::with_capacity(cfg.workers + 1);
    for _ in 0..cfg.workers.max(1) {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let metrics = metrics.clone();
        threads.push(thread::spawn(move || {
            worker_loop(rx, handler, metrics, cfg)
        }));
    }
    {
        let shutdown = Arc::clone(&shutdown);
        let metrics = metrics.clone();
        threads.push(thread::spawn(move || {
            accept_loop(listener, tx, shutdown, metrics, cfg);
        }));
    }

    Ok(ServerHandle {
        addr: local,
        shutdown,
        threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    metrics: ServerMetrics,
    cfg: ServerConfig,
) {
    // `tx` is dropped when this loop exits, disconnecting the workers'
    // `recv` so they drain the queue and stop — no extra signalling.
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Back-pressure by refusal: tell the client now
                        // rather than queueing unboundedly.
                        metrics.rejected_total.inc();
                        reject_overload(stream, cfg);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn reject_overload(stream: TcpStream, cfg: ServerConfig) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
    let _ = write_response(
        stream,
        &Response::error(503, "server overloaded, try again"),
    );
}

fn worker_loop(
    rx: Receiver<TcpStream>,
    handler: Handler,
    metrics: ServerMetrics,
    cfg: ServerConfig,
) {
    while let Ok(stream) = rx.recv() {
        metrics.queue_depth.set(rx.len() as f64);
        handle_connection(stream, &handler, &metrics, cfg);
    }
}

fn handle_connection(
    stream: TcpStream,
    handler: &Handler,
    metrics: &ServerMetrics,
    cfg: ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
    metrics.requests_total.inc();
    let response = match read_request(&stream, cfg) {
        Ok(req) => {
            // A panicking route must cost one response, not one worker.
            match catch_unwind(AssertUnwindSafe(|| handler(&req))) {
                Ok(resp) => resp,
                Err(_) => {
                    metrics.panics_total.inc();
                    Response::error(500, "handler panicked")
                }
            }
        }
        Err(ReadError::Disconnected) => {
            // Mid-request hangup: nothing to answer, just count it.
            metrics.disconnects_total.inc();
            return;
        }
        Err(ReadError::Http(status, msg)) => {
            // The request may not be fully read (oversized header/body):
            // answer, then drain before closing so the client receives
            // the response instead of a connection reset.
            let resp = Response::error(status, msg);
            metrics.count_response(resp.status);
            let _ = write_response_lingering(stream, &resp);
            return;
        }
    };
    metrics.count_response(response.status);
    let _ = write_response(stream, &response);
}

/// Writes `resp`, half-closes the write side, then drains (bounded) any
/// unread request bytes. Closing with unread data pending makes the
/// kernel send RST, which can destroy the response before the client
/// reads it — the drain gives a graceful close instead.
fn write_response_lingering(mut stream: TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut chunk = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
    Ok(())
}

enum ReadError {
    /// Client went away (EOF or socket error) before a full request.
    Disconnected,
    /// Protocol-level problem: answer with this status and close.
    Http(u16, &'static str),
}

fn read_request(mut stream: &TcpStream, cfg: ServerConfig) -> Result<Request, ReadError> {
    // Read until the blank line ending the headers, bounded.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > cfg.max_header_bytes {
            return Err(ReadError::Http(431, "request headers too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ReadError::Disconnected),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ReadError::Http(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Http(400, "unsupported protocol version"));
    }
    let method = method.to_ascii_uppercase();
    if method != "GET" && method != "POST" {
        return Err(ReadError::Http(405, "method not allowed"));
    }

    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Http(400, "bad content-length"))?;
            }
        }
    }
    if content_length > cfg.max_body_bytes {
        return Err(ReadError::Http(413, "request body too large"));
    }

    // Body bytes read together with the headers, then the remainder.
    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ReadError::Disconnected),
        }
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

fn write_response(mut stream: TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing() {
        let q = parse_query("job=3&index=1&rate=0.1&flag");
        assert_eq!(q.len(), 4);
        assert_eq!(q[0], ("job".to_string(), "3".to_string()));
        assert_eq!(q[3], ("flag".to_string(), String::new()));
        let req = Request {
            query: q,
            ..Request::default()
        };
        assert_eq!(req.param("rate"), Some("0.1"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    #[test]
    fn error_body_is_json_escaped() {
        let r = Response::error(400, "bad \"thing\"\n");
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            "{\"error\":\"bad \\\"thing\\\"\\n\"}"
        );
    }
}
