//! Shared state between the ticking harness and the request handlers.
//!
//! The contract mirrors the spec store's snapshot-swap pattern: the
//! harness thread publishes immutable state after every tick and swaps
//! it in under a short mutex; request handlers clone `Arc`s out and
//! read without ever blocking the tick loop or observing a torn view.
//! Operator actions flow the other way through the [`ActionQueue`] and
//! are applied only at the next tick boundary, so a resident server
//! perturbs neither tick ordering nor determinism.
//!
//! At fleet scale the per-tick publish is a [`DeltaSnapshot`] — only
//! the machines whose fingerprint changed, appended incidents/samples,
//! spec bumps, and grown traces — layered over a periodic full
//! [`LiveSnapshot`] base, so the tick thread pays for churn, not fleet
//! size. Handlers reconstruct the merged view lazily ([`LiveState::snapshot`]);
//! the merge runs at most once per publish (cached) and happens on a
//! request thread, never the tick thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cpi2::core::{CpiSample, CpiSpec};
use cpi2::telemetry::Telemetry;
use parking_lot::Mutex;
use serde::Serialize;

/// One resident task, as seen on a machine page.
#[derive(Debug, Clone, Serialize)]
pub struct TaskView {
    /// Owning job id.
    pub job: u32,
    /// Task index within the job.
    pub index: u32,
    /// Job name (the `jobname` of CPI records).
    pub job_name: String,
    /// Scheduling class (`LatencySensitive` / `Batch` / `BestEffort`).
    pub class: String,
    /// Runnable threads as of the last tick.
    pub threads: u32,
}

/// One machine's live summary.
#[derive(Debug, Clone, Serialize)]
pub struct MachineView {
    /// Machine id.
    pub id: u32,
    /// Resident task count.
    pub tasks: usize,
    /// Total runnable threads.
    pub threads: u64,
    /// CPU utilization, 0..1+.
    pub utilization: f64,
    /// Hard-cap throttle events since boot.
    pub throttle_events: u64,
    /// The resident tasks.
    pub task_list: Vec<TaskView>,
}

/// One ranked suspect of an incident.
#[derive(Debug, Clone, Serialize)]
pub struct SuspectView {
    /// Suspect job name.
    pub jobname: String,
    /// Identifier score (correlation / PANDA credit).
    pub correlation: f64,
}

/// One incident, flattened for serving and querying.
#[derive(Debug, Clone, Serialize)]
pub struct IncidentView {
    /// End-to-end trace id, 16 hex digits.
    pub trace: String,
    /// Detection time, sim µs.
    pub at_us: i64,
    /// Reporting machine.
    pub machine: u32,
    /// Victim job name.
    pub victim_job: String,
    /// Victim task handle.
    pub victim_task: u64,
    /// Victim CPI at detection.
    pub victim_cpi: f64,
    /// The 2σ outlier threshold in force.
    pub cthreshold: f64,
    /// `"hard_cap"` or `"none"`.
    pub action: String,
    /// Capped job (empty for `none`).
    pub target_job: String,
    /// Cap rate in CPU-sec/sec (0 for `none`).
    pub cpu_rate: f64,
    /// Why nothing was done (empty for `hard_cap`).
    pub reason: String,
    /// Ranked suspects, top first.
    pub suspects: Vec<SuspectView>,
}

/// One span of an incident trace.
#[derive(Debug, Clone, Serialize)]
pub struct SpanView {
    /// Lifecycle stage name (`sample_window` … `recovery`).
    pub stage: String,
    /// Span start, sim µs.
    pub start_us: i64,
    /// Span end, sim µs.
    pub end_us: i64,
    /// Human-readable stage detail.
    pub detail: String,
}

/// One complete incident trace: the span chain in causal order.
#[derive(Debug, Clone, Serialize)]
pub struct TraceView {
    /// Trace id, 16 hex digits.
    pub trace: String,
    /// Spans in causal order.
    pub spans: Vec<SpanView>,
}

/// Incidents retained per merged snapshot (oldest dropped beyond it).
pub const INCIDENT_TAIL: usize = 256;
/// CPI samples retained per merged snapshot.
pub const SAMPLE_TAIL: usize = 512;

/// Immutable per-tick snapshot of everything the server reads.
#[derive(Debug, Clone, Default)]
pub struct LiveSnapshot {
    /// Sim time of the snapshot, µs.
    pub now_us: i64,
    /// Tick length, µs.
    pub tick_us: i64,
    /// Ticks the harness has executed.
    pub ticks: u64,
    /// Spec store version.
    pub spec_version: u64,
    /// Whether cluster-wide CPI protection is on.
    pub protection_enabled: bool,
    /// Hard caps applied so far.
    pub caps_applied: u64,
    /// Sample batches lost to collector back-pressure.
    pub collector_dropped: u64,
    /// Per-machine summaries, machine-id order.
    pub machines: Vec<MachineView>,
    /// Recent incidents, oldest first (bounded tail).
    pub incidents: Vec<IncidentView>,
    /// Every published CPI spec.
    pub specs: Vec<CpiSpec>,
    /// Recent CPI samples (bounded tail).
    pub samples: Vec<CpiSample>,
    /// Retained incident traces, oldest first.
    pub traces: Vec<TraceView>,
}

/// One tick's diff over the current full base: replaced machine views,
/// appended incidents/samples, changed specs, and grown traces, plus
/// the always-cheap scalar header. Built by the harness when only part
/// of the fleet changed; empty collections mean "scalars only".
#[derive(Debug, Clone, Default)]
pub struct DeltaSnapshot {
    /// Sim time of the delta, µs.
    pub now_us: i64,
    /// Tick length, µs.
    pub tick_us: i64,
    /// Ticks the harness has executed.
    pub ticks: u64,
    /// Spec store version.
    pub spec_version: u64,
    /// Whether cluster-wide CPI protection is on.
    pub protection_enabled: bool,
    /// Hard caps applied so far.
    pub caps_applied: u64,
    /// Sample batches lost to collector back-pressure.
    pub collector_dropped: u64,
    /// Machines whose fingerprint changed (full replacement views).
    pub machines: Vec<MachineView>,
    /// Incidents appended since the previous publish.
    pub new_incidents: Vec<IncidentView>,
    /// Samples appended since the previous publish.
    pub new_samples: Vec<CpiSample>,
    /// Specs republished since the previous publish (replace by job).
    pub changed_specs: Vec<CpiSpec>,
    /// Traces added or extended since the previous publish (replace by
    /// trace id).
    pub changed_traces: Vec<TraceView>,
}

/// Replays `deltas` (oldest first) over `base` into one merged view.
fn merge(base: &LiveSnapshot, deltas: &[Arc<DeltaSnapshot>]) -> LiveSnapshot {
    let mut out = base.clone();
    for d in deltas {
        out.now_us = d.now_us;
        out.tick_us = d.tick_us;
        out.ticks = d.ticks;
        out.spec_version = d.spec_version;
        out.protection_enabled = d.protection_enabled;
        out.caps_applied = d.caps_applied;
        out.collector_dropped = d.collector_dropped;
        for m in &d.machines {
            // `machines` is id-ordered in every snapshot; replacement
            // keeps it so (and `/machines/{id}` lookups keep working).
            match out.machines.binary_search_by_key(&m.id, |x| x.id) {
                Ok(i) => {
                    if let Some(slot) = out.machines.get_mut(i) {
                        *slot = m.clone();
                    }
                }
                Err(i) => out.machines.insert(i, m.clone()),
            }
        }
        out.incidents.extend(d.new_incidents.iter().cloned());
        out.samples.extend(d.new_samples.iter().cloned());
        for spec in &d.changed_specs {
            match out.specs.iter_mut().find(|s| s.jobname == spec.jobname) {
                Some(slot) => *slot = spec.clone(),
                None => out.specs.push(spec.clone()),
            }
        }
        for trace in &d.changed_traces {
            match out.traces.iter_mut().find(|t| t.trace == trace.trace) {
                Some(slot) => *slot = trace.clone(),
                None => out.traces.push(trace.clone()),
            }
        }
    }
    if out.incidents.len() > INCIDENT_TAIL {
        let excess = out.incidents.len() - INCIDENT_TAIL;
        out.incidents.drain(..excess);
    }
    if out.samples.len() > SAMPLE_TAIL {
        let excess = out.samples.len() - SAMPLE_TAIL;
        out.samples.drain(..excess);
    }
    out
}

#[derive(Debug, Default)]
struct LiveCell {
    base: Arc<LiveSnapshot>,
    deltas: Vec<Arc<DeltaSnapshot>>,
    /// Cached merge of `base` + `deltas`; invalidated by any publish.
    merged: Option<Arc<LiveSnapshot>>,
    /// Bumped by every publish, so a merge computed outside the lock is
    /// installed only if nothing was published meanwhile.
    generation: u64,
}

/// Snapshot-swap cell: the tick thread publishes a full base or a
/// per-tick delta; readers get the merged view. Merging happens lazily
/// on the first reader after a publish (cached afterwards), outside the
/// lock, so neither the tick thread nor other readers wait on it.
#[derive(Debug, Default)]
pub struct LiveState {
    cell: Mutex<LiveCell>,
}

impl LiveState {
    /// Atomically replaces the current base snapshot, discarding any
    /// layered deltas (a *full* publish).
    pub fn publish(&self, snap: LiveSnapshot) {
        let mut c = self.cell.lock();
        c.base = Arc::new(snap);
        c.deltas.clear();
        c.merged = None;
        c.generation += 1;
    }

    /// Layers one per-tick delta over the current base.
    pub fn publish_delta(&self, delta: DeltaSnapshot) {
        let mut c = self.cell.lock();
        c.deltas.push(Arc::new(delta));
        c.merged = None;
        c.generation += 1;
    }

    /// The current merged snapshot (clone-cheap once merged; the merge
    /// itself runs at most once per publish).
    pub fn snapshot(&self) -> Arc<LiveSnapshot> {
        let (base, deltas, generation) = {
            let c = self.cell.lock();
            if let Some(m) = &c.merged {
                return Arc::clone(m);
            }
            if c.deltas.is_empty() {
                return Arc::clone(&c.base);
            }
            (Arc::clone(&c.base), c.deltas.clone(), c.generation)
        };
        let merged = Arc::new(merge(&base, &deltas));
        let mut c = self.cell.lock();
        if c.generation == generation {
            c.merged = Some(Arc::clone(&merged));
        }
        merged
    }

    /// Deltas currently layered over the base (tests and diagnostics).
    pub fn delta_depth(&self) -> usize {
        self.cell.lock().deltas.len()
    }
}

/// An operator action accepted over HTTP, pending deterministic
/// application at the next tick boundary (§5's operator interface).
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorAction {
    /// Manually hard-cap a task.
    Cap {
        /// Target job id.
        job: u32,
        /// Target task index.
        index: u32,
        /// Cap rate, CPU-sec/sec.
        rate: f64,
        /// Cap lifetime, µs of sim time.
        duration_us: i64,
    },
    /// Lift a task's hard cap.
    Uncap {
        /// Target job id.
        job: u32,
        /// Target task index.
        index: u32,
    },
    /// Kill a persistent offender and restart it elsewhere ("our version
    /// of task migration", §5).
    KillRestart {
        /// Target job id.
        job: u32,
        /// Target task index.
        index: u32,
    },
    /// Turn cluster-wide CPI protection on or off.
    SetProtection(
        /// Desired protection state.
        bool,
    ),
}

/// FIFO queue of operator actions awaiting the next tick.
#[derive(Debug, Default)]
pub struct ActionQueue {
    q: Mutex<VecDeque<OperatorAction>>,
    accepted: AtomicU64,
}

impl ActionQueue {
    /// Enqueues an action; returns its 1-based acceptance sequence number.
    pub fn push(&self, action: OperatorAction) -> u64 {
        self.q.lock().push_back(action);
        self.accepted.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Takes every queued action, FIFO order.
    pub fn drain(&self) -> Vec<OperatorAction> {
        self.q.lock().drain(..).collect()
    }

    /// Actions accepted since boot.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Actions currently awaiting a tick.
    pub fn pending(&self) -> usize {
        self.q.lock().len()
    }
}

/// Everything the router and the harness share.
#[derive(Debug)]
pub struct SharedState {
    /// The per-tick snapshot cell.
    pub live: LiveState,
    /// Operator actions awaiting the next tick.
    pub actions: ActionQueue,
    /// The system's telemetry registry (serves `/metrics`).
    pub telemetry: Telemetry,
}

impl SharedState {
    /// Creates shared state around the system's telemetry handle.
    pub fn new(telemetry: Telemetry) -> Arc<SharedState> {
        Arc::new(SharedState {
            live: LiveState::default(),
            actions: ActionQueue::default(),
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_swap_is_torn_free() {
        let state = LiveState::default();
        assert_eq!(state.snapshot().ticks, 0);
        let held = state.snapshot();
        state.publish(LiveSnapshot {
            ticks: 7,
            now_us: 42,
            ..LiveSnapshot::default()
        });
        // The old snapshot a reader holds is unchanged; new readers see
        // the new one.
        assert_eq!(held.ticks, 0);
        assert_eq!(state.snapshot().ticks, 7);
        assert_eq!(state.snapshot().now_us, 42);
    }

    fn machine(id: u32, utilization: f64) -> MachineView {
        MachineView {
            id,
            tasks: 1,
            threads: 2,
            utilization,
            throttle_events: 0,
            task_list: Vec::new(),
        }
    }

    #[test]
    fn deltas_merge_lazily_and_cache() {
        let state = LiveState::default();
        state.publish(LiveSnapshot {
            ticks: 1,
            machines: vec![machine(0, 0.1), machine(2, 0.2)],
            ..LiveSnapshot::default()
        });
        state.publish_delta(DeltaSnapshot {
            ticks: 2,
            now_us: 99,
            machines: vec![machine(2, 0.9), machine(1, 0.5)],
            ..DeltaSnapshot::default()
        });
        assert_eq!(state.delta_depth(), 1);
        let merged = state.snapshot();
        assert_eq!(merged.ticks, 2);
        assert_eq!(merged.now_us, 99);
        // Replacement by id keeps id order; unknown ids insert in place.
        let ids: Vec<u32> = merged.machines.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!((merged.machines[2].utilization - 0.9).abs() < 1e-12);
        // A second read returns the cached merge (same Arc).
        assert!(Arc::ptr_eq(&merged, &state.snapshot()));
        // A full publish discards the layered deltas.
        state.publish(LiveSnapshot::default());
        assert_eq!(state.delta_depth(), 0);
        assert_eq!(state.snapshot().machines.len(), 0);
    }

    #[test]
    fn merged_tails_stay_bounded() {
        fn incident(n: usize) -> IncidentView {
            IncidentView {
                trace: format!("{n:016x}"),
                at_us: n as i64,
                machine: 0,
                victim_job: "v".into(),
                victim_task: 0,
                victim_cpi: 1.0,
                cthreshold: 2.0,
                action: "none".into(),
                target_job: String::new(),
                cpu_rate: 0.0,
                reason: "test".into(),
                suspects: Vec::new(),
            }
        }
        let state = LiveState::default();
        state.publish(LiveSnapshot {
            incidents: (0..INCIDENT_TAIL).map(incident).collect(),
            ..LiveSnapshot::default()
        });
        state.publish_delta(DeltaSnapshot {
            new_incidents: vec![incident(INCIDENT_TAIL), incident(INCIDENT_TAIL + 1)],
            ..DeltaSnapshot::default()
        });
        let merged = state.snapshot();
        assert_eq!(merged.incidents.len(), INCIDENT_TAIL);
        // Oldest dropped, newest retained.
        assert_eq!(merged.incidents[0].at_us, 2);
        assert_eq!(
            merged.incidents.last().unwrap().at_us,
            (INCIDENT_TAIL + 1) as i64
        );
    }

    #[test]
    fn delta_traces_replace_by_id() {
        let state = LiveState::default();
        state.publish(LiveSnapshot {
            traces: vec![TraceView {
                trace: "00000000000000aa".into(),
                spans: Vec::new(),
            }],
            ..LiveSnapshot::default()
        });
        state.publish_delta(DeltaSnapshot {
            changed_traces: vec![
                TraceView {
                    trace: "00000000000000aa".into(),
                    spans: vec![SpanView {
                        stage: "recovery".into(),
                        start_us: 1,
                        end_us: 2,
                        detail: String::new(),
                    }],
                },
                TraceView {
                    trace: "00000000000000bb".into(),
                    spans: Vec::new(),
                },
            ],
            ..DeltaSnapshot::default()
        });
        let merged = state.snapshot();
        assert_eq!(merged.traces.len(), 2);
        assert_eq!(merged.traces[0].spans.len(), 1, "extended in place");
    }

    #[test]
    fn action_queue_is_fifo() {
        let q = ActionQueue::default();
        assert_eq!(q.push(OperatorAction::SetProtection(false)), 1);
        assert_eq!(q.push(OperatorAction::Uncap { job: 1, index: 2 }), 2);
        assert_eq!(q.pending(), 2);
        let drained = q.drain();
        assert_eq!(drained[0], OperatorAction::SetProtection(false));
        assert_eq!(drained[1], OperatorAction::Uncap { job: 1, index: 2 });
        assert_eq!(q.pending(), 0);
        assert_eq!(q.accepted(), 2);
    }
}
