//! Shared state between the ticking harness and the request handlers.
//!
//! The contract mirrors the spec store's snapshot-swap pattern: the
//! harness thread builds a fresh immutable [`LiveSnapshot`] after every
//! tick and swaps it in under a short mutex; request handlers clone the
//! `Arc` out and read without ever blocking the tick loop or observing a
//! torn view. Operator actions flow the other way through the
//! [`ActionQueue`] and are applied only at the next tick boundary, so a
//! resident server perturbs neither tick ordering nor determinism.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cpi2::core::{CpiSample, CpiSpec};
use cpi2::telemetry::Telemetry;
use parking_lot::Mutex;
use serde::Serialize;

/// One resident task, as seen on a machine page.
#[derive(Debug, Clone, Serialize)]
pub struct TaskView {
    /// Owning job id.
    pub job: u32,
    /// Task index within the job.
    pub index: u32,
    /// Job name (the `jobname` of CPI records).
    pub job_name: String,
    /// Scheduling class (`LatencySensitive` / `Batch` / `BestEffort`).
    pub class: String,
    /// Runnable threads as of the last tick.
    pub threads: u32,
}

/// One machine's live summary.
#[derive(Debug, Clone, Serialize)]
pub struct MachineView {
    /// Machine id.
    pub id: u32,
    /// Resident task count.
    pub tasks: usize,
    /// Total runnable threads.
    pub threads: u64,
    /// CPU utilization, 0..1+.
    pub utilization: f64,
    /// Hard-cap throttle events since boot.
    pub throttle_events: u64,
    /// The resident tasks.
    pub task_list: Vec<TaskView>,
}

/// One ranked suspect of an incident.
#[derive(Debug, Clone, Serialize)]
pub struct SuspectView {
    /// Suspect job name.
    pub jobname: String,
    /// Identifier score (correlation / PANDA credit).
    pub correlation: f64,
}

/// One incident, flattened for serving and querying.
#[derive(Debug, Clone, Serialize)]
pub struct IncidentView {
    /// End-to-end trace id, 16 hex digits.
    pub trace: String,
    /// Detection time, sim µs.
    pub at_us: i64,
    /// Reporting machine.
    pub machine: u32,
    /// Victim job name.
    pub victim_job: String,
    /// Victim task handle.
    pub victim_task: u64,
    /// Victim CPI at detection.
    pub victim_cpi: f64,
    /// The 2σ outlier threshold in force.
    pub cthreshold: f64,
    /// `"hard_cap"` or `"none"`.
    pub action: String,
    /// Capped job (empty for `none`).
    pub target_job: String,
    /// Cap rate in CPU-sec/sec (0 for `none`).
    pub cpu_rate: f64,
    /// Why nothing was done (empty for `hard_cap`).
    pub reason: String,
    /// Ranked suspects, top first.
    pub suspects: Vec<SuspectView>,
}

/// One span of an incident trace.
#[derive(Debug, Clone, Serialize)]
pub struct SpanView {
    /// Lifecycle stage name (`sample_window` … `recovery`).
    pub stage: String,
    /// Span start, sim µs.
    pub start_us: i64,
    /// Span end, sim µs.
    pub end_us: i64,
    /// Human-readable stage detail.
    pub detail: String,
}

/// One complete incident trace: the span chain in causal order.
#[derive(Debug, Clone, Serialize)]
pub struct TraceView {
    /// Trace id, 16 hex digits.
    pub trace: String,
    /// Spans in causal order.
    pub spans: Vec<SpanView>,
}

/// Immutable per-tick snapshot of everything the server reads.
#[derive(Debug, Clone, Default)]
pub struct LiveSnapshot {
    /// Sim time of the snapshot, µs.
    pub now_us: i64,
    /// Tick length, µs.
    pub tick_us: i64,
    /// Ticks the harness has executed.
    pub ticks: u64,
    /// Spec store version.
    pub spec_version: u64,
    /// Whether cluster-wide CPI protection is on.
    pub protection_enabled: bool,
    /// Hard caps applied so far.
    pub caps_applied: u64,
    /// Sample batches lost to collector back-pressure.
    pub collector_dropped: u64,
    /// Per-machine summaries, machine-id order.
    pub machines: Vec<MachineView>,
    /// Recent incidents, oldest first (bounded tail).
    pub incidents: Vec<IncidentView>,
    /// Every published CPI spec.
    pub specs: Vec<CpiSpec>,
    /// Recent CPI samples (bounded tail).
    pub samples: Vec<CpiSample>,
    /// Retained incident traces, oldest first.
    pub traces: Vec<TraceView>,
}

/// Snapshot-swap cell: writers publish a whole new snapshot; readers
/// clone the `Arc` out under a short lock and never see a torn view.
#[derive(Debug, Default)]
pub struct LiveState {
    snap: Mutex<Arc<LiveSnapshot>>,
}

impl LiveState {
    /// Atomically replaces the current snapshot.
    pub fn publish(&self, snap: LiveSnapshot) {
        *self.snap.lock() = Arc::new(snap);
    }

    /// The current snapshot (clone-cheap).
    pub fn snapshot(&self) -> Arc<LiveSnapshot> {
        Arc::clone(&self.snap.lock())
    }
}

/// An operator action accepted over HTTP, pending deterministic
/// application at the next tick boundary (§5's operator interface).
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorAction {
    /// Manually hard-cap a task.
    Cap {
        /// Target job id.
        job: u32,
        /// Target task index.
        index: u32,
        /// Cap rate, CPU-sec/sec.
        rate: f64,
        /// Cap lifetime, µs of sim time.
        duration_us: i64,
    },
    /// Lift a task's hard cap.
    Uncap {
        /// Target job id.
        job: u32,
        /// Target task index.
        index: u32,
    },
    /// Kill a persistent offender and restart it elsewhere ("our version
    /// of task migration", §5).
    KillRestart {
        /// Target job id.
        job: u32,
        /// Target task index.
        index: u32,
    },
    /// Turn cluster-wide CPI protection on or off.
    SetProtection(
        /// Desired protection state.
        bool,
    ),
}

/// FIFO queue of operator actions awaiting the next tick.
#[derive(Debug, Default)]
pub struct ActionQueue {
    q: Mutex<VecDeque<OperatorAction>>,
    accepted: AtomicU64,
}

impl ActionQueue {
    /// Enqueues an action; returns its 1-based acceptance sequence number.
    pub fn push(&self, action: OperatorAction) -> u64 {
        self.q.lock().push_back(action);
        self.accepted.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Takes every queued action, FIFO order.
    pub fn drain(&self) -> Vec<OperatorAction> {
        self.q.lock().drain(..).collect()
    }

    /// Actions accepted since boot.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Actions currently awaiting a tick.
    pub fn pending(&self) -> usize {
        self.q.lock().len()
    }
}

/// Everything the router and the harness share.
#[derive(Debug)]
pub struct SharedState {
    /// The per-tick snapshot cell.
    pub live: LiveState,
    /// Operator actions awaiting the next tick.
    pub actions: ActionQueue,
    /// The system's telemetry registry (serves `/metrics`).
    pub telemetry: Telemetry,
}

impl SharedState {
    /// Creates shared state around the system's telemetry handle.
    pub fn new(telemetry: Telemetry) -> Arc<SharedState> {
        Arc::new(SharedState {
            live: LiveState::default(),
            actions: ActionQueue::default(),
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_swap_is_torn_free() {
        let state = LiveState::default();
        assert_eq!(state.snapshot().ticks, 0);
        let held = state.snapshot();
        state.publish(LiveSnapshot {
            ticks: 7,
            now_us: 42,
            ..LiveSnapshot::default()
        });
        // The old snapshot a reader holds is unchanged; new readers see
        // the new one.
        assert_eq!(held.ticks, 0);
        assert_eq!(state.snapshot().ticks, 7);
        assert_eq!(state.snapshot().now_us, 42);
    }

    #[test]
    fn action_queue_is_fifo() {
        let q = ActionQueue::default();
        assert_eq!(q.push(OperatorAction::SetProtection(false)), 1);
        assert_eq!(q.push(OperatorAction::Uncap { job: 1, index: 2 }), 2);
        assert_eq!(q.pending(), 2);
        let drained = q.drain();
        assert_eq!(drained[0], OperatorAction::SetProtection(false));
        assert_eq!(drained[1], OperatorAction::Uncap { job: 1, index: 2 });
        assert_eq!(q.pending(), 0);
        assert_eq!(q.accepted(), 2);
    }
}
