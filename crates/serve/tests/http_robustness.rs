//! Loopback HTTP tests: every endpoint answers well-formed output, and
//! hostile input (malformed request lines, oversized headers/bodies,
//! unknown routes, mid-request disconnects) gets a 4xx or a clean close —
//! never a panic, never a wedged worker.

use std::io::{Read, Write};
use std::net::TcpStream;

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, Platform, SimDuration};
use cpi2::telemetry::Telemetry;
use cpi2_serve::{ServeHarness, ServerConfig};

fn boot() -> (ServeHarness, std::net::SocketAddr) {
    let telemetry = Telemetry::enabled();
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 42,
        telemetry: telemetry.clone(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 4);
    cpi2::workloads::submit_typical_mix(&mut cluster, 1, 42);
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut sh = ServeHarness::new(Cpi2Harness::new(cluster, config));
    sh.run_for(SimDuration::from_mins(3));
    let addr = sh
        .serve("127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    (sh, addr)
}

/// Sends raw bytes, returns (status, full body). Half-closes the write
/// side after sending so the server's lingering-close drain ends at EOF.
fn raw(addr: std::net::SocketAddr, bytes: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(bytes).expect("write");
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    let status: u16 = out
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Mirror of the CI scrape-line regex `^# |^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$`.
fn sample_line_ok(line: &str) -> bool {
    if line.starts_with("# ") {
        return true;
    }
    let Some((name_part, value)) = line.rsplit_once(' ') else {
        return false;
    };
    if value.is_empty()
        || !value
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        return false;
    }
    let name = match name_part.split_once('{') {
        Some((n, rest)) => {
            if !rest.ends_with('}') || rest[..rest.len() - 1].contains('}') {
                return false;
            }
            n
        }
        None => name_part,
    };
    !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '_')
}

#[test]
fn endpoints_serve_well_formed_output() {
    let (mut sh, addr) = boot();

    let (code, body) = get(addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    let (code, body) = get(addr, "/version");
    assert_eq!(code, 200);
    assert!(body.contains("\"name\":\"cpi2-serve\""), "{body}");

    let (code, body) = get(addr, "/metrics");
    assert_eq!(code, 200);
    assert!(body.contains("cpi_sim_ticks_total"), "{body}");
    for line in body.lines() {
        assert!(
            sample_line_ok(line),
            "scrape line fails CI grammar: {line:?}"
        );
    }

    let (code, body) = get(addr, "/metrics.json");
    assert_eq!(code, 200);
    assert!(
        body.starts_with('{') && body.contains("\"counters\""),
        "{body}"
    );

    let (code, body) = get(addr, "/incidents");
    assert_eq!(code, 200);
    assert!(body.starts_with('['), "{body}");

    let (code, body) = get(addr, "/machines/0");
    assert_eq!(code, 200);
    assert!(body.contains("\"task_list\""), "{body}");

    let (code, body) = get(addr, "/debug/events");
    assert_eq!(code, 200);
    assert!(body.starts_with('['), "{body}");

    let (code, body) = post(addr, "/query", "SELECT id, tasks FROM machines ORDER BY id");
    assert_eq!(code, 200);
    assert!(body.contains("\"columns\":[\"id\",\"tasks\"]"), "{body}");

    let (code, _) = post(addr, "/actions/protection?enabled=false", "");
    assert_eq!(code, 202);
    sh.tick();
    assert!(!sh.inner().protection_enabled());
    let (code, _) = post(addr, "/actions/protection?enabled=true", "");
    assert_eq!(code, 202);
    sh.tick();
    assert!(sh.inner().protection_enabled());

    sh.shutdown_server();
}

#[test]
fn hostile_input_never_panics() {
    let (mut sh, addr) = boot();

    // Malformed request line.
    let (code, _) = raw(addr, b"GARBAGE\r\n\r\n");
    assert_eq!(code, 400);
    let (code, _) = raw(addr, b"GET /too many words here\r\n\r\n");
    assert_eq!(code, 400);
    // HTTP/0.9-style and bad versions.
    let (code, _) = raw(addr, b"GET / SPDY/99\r\n\r\n");
    assert_eq!(code, 400);
    // Unsupported method.
    let (code, _) = raw(addr, b"DELETE / HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(code, 405);
    // Unknown routes.
    let (code, _) = get(addr, "/no/such/route");
    assert_eq!(code, 404);
    let (code, _) = post(addr, "/actions/self-destruct?job=1&index=0", "");
    assert_eq!(code, 404);
    // Oversized headers.
    let mut big = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
    big.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(16 * 1024)).as_bytes());
    let (code, _) = raw(addr, &big);
    assert_eq!(code, 431);
    // Oversized declared body.
    let (code, _) = raw(
        addr,
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert_eq!(code, 413);
    // Nonsense content-length.
    let (code, _) = raw(
        addr,
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(code, 400);
    // Bad SQL is a 400, not a panic.
    let (code, _) = post(addr, "/query", "DROP TABLE incidents");
    assert_eq!(code, 400);
    // Bad action parameters.
    let (code, _) = post(addr, "/actions/cap?job=x&index=y&rate=z", "");
    assert_eq!(code, 400);
    let (code, _) = post(addr, "/actions/cap?job=1&index=0&rate=-4", "");
    assert_eq!(code, 400);

    // Mid-request disconnects: write a partial request and hang up.
    for partial in [
        &b"GET /metr"[..],
        &b"POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\nSELE"[..],
    ] {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(partial).expect("write");
        drop(s);
    }

    // The server survived all of it and still answers.
    let (code, body) = get(addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let text = sh
        .inner()
        .telemetry()
        .prometheus_text()
        .expect("telemetry on");
    assert!(
        text.contains("cpi_serve_handler_panics_total 0"),
        "a handler panicked:\n{text}"
    );

    sh.shutdown_server();
}
