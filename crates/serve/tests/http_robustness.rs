//! Loopback HTTP tests: every endpoint answers well-formed output, and
//! hostile input (malformed request lines, oversized headers/bodies,
//! slowloris trickles, mid-request and mid-chunk disconnects, idle
//! keep-alive squatters) gets a 4xx, a `408`, or a clean close — never
//! a panic, never a wedged shard.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, Platform, SimDuration};
use cpi2::telemetry::Telemetry;
use cpi2_serve::http::{scan_response, ScannedResponse};
use cpi2_serve::{ServeHarness, ServerConfig};

fn boot_with(cfg: ServerConfig) -> (ServeHarness, std::net::SocketAddr) {
    let telemetry = Telemetry::enabled();
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 42,
        telemetry: telemetry.clone(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 4);
    cpi2::workloads::submit_typical_mix(&mut cluster, 1, 42);
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut sh = ServeHarness::new(Cpi2Harness::new(cluster, config));
    sh.run_for(SimDuration::from_mins(3));
    let addr = sh.serve("127.0.0.1:0", cfg).expect("bind loopback");
    (sh, addr)
}

fn boot() -> (ServeHarness, std::net::SocketAddr) {
    boot_with(ServerConfig::default())
}

/// Decodes a chunked transfer coding (already split from the head).
fn dechunk(mut rest: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let Some(eol) = rest.windows(2).position(|w| w == b"\r\n") else {
            return out;
        };
        let Some(size) = std::str::from_utf8(&rest[..eol])
            .ok()
            .and_then(|s| usize::from_str_radix(s.trim(), 16).ok())
        else {
            return out;
        };
        if size == 0 || rest.len() < eol + 2 + size {
            return out;
        }
        out.extend_from_slice(&rest[eol + 2..eol + 2 + size]);
        rest = &rest[eol + 2 + size + 2..];
    }
}

/// Parses one response from raw wire bytes: status plus the decoded
/// (de-chunked when applicable) body.
fn parse_response(wire: &[u8]) -> (u16, String) {
    let Some(head_end) = wire.windows(4).position(|w| w == b"\r\n\r\n") else {
        return (0, String::new());
    };
    let head = String::from_utf8_lossy(&wire[..head_end]).to_ascii_lowercase();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body_bytes = &wire[head_end + 4..];
    let body = if head.contains("transfer-encoding: chunked") {
        dechunk(body_bytes)
    } else {
        body_bytes.to_vec()
    };
    (status, String::from_utf8_lossy(&body).into_owned())
}

/// Sends raw bytes, returns (status, decoded body). Half-closes the
/// write side after sending so the server's lingering-close drain ends
/// at EOF.
fn raw(addr: std::net::SocketAddr, bytes: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(bytes).expect("write");
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read");
    parse_response(&out)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Mirror of the CI scrape-line regex `^# |^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$`.
fn sample_line_ok(line: &str) -> bool {
    if line.starts_with("# ") {
        return true;
    }
    let Some((name_part, value)) = line.rsplit_once(' ') else {
        return false;
    };
    if value.is_empty()
        || !value
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        return false;
    }
    let name = match name_part.split_once('{') {
        Some((n, rest)) => {
            if !rest.ends_with('}') || rest[..rest.len() - 1].contains('}') {
                return false;
            }
            n
        }
        None => name_part,
    };
    !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '_')
}

#[test]
fn endpoints_serve_well_formed_output() {
    let (mut sh, addr) = boot();

    let (code, body) = get(addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    let (code, body) = get(addr, "/version");
    assert_eq!(code, 200);
    assert!(body.contains("\"name\":\"cpi2-serve\""), "{body}");

    let (code, body) = get(addr, "/metrics");
    assert_eq!(code, 200);
    assert!(body.contains("cpi_sim_ticks_total"), "{body}");
    // New serve metrics: the open-connection gauge (this scrape's own
    // connection counts), per-endpoint latency histograms from the
    // requests above, and the tick-thread publish-cost histogram.
    assert!(body.contains("cpi_serve_open_connections"), "{body}");
    assert!(
        body.contains("cpi_serve_request_duration_us{endpoint=\"healthz\""),
        "{body}"
    );
    assert!(body.contains("cpi_serve_publish_us"), "{body}");
    for line in body.lines() {
        assert!(
            sample_line_ok(line),
            "scrape line fails CI grammar: {line:?}"
        );
    }

    let (code, body) = get(addr, "/metrics.json");
    assert_eq!(code, 200);
    assert!(
        body.starts_with('{') && body.contains("\"counters\""),
        "{body}"
    );

    let (code, body) = get(addr, "/incidents");
    assert_eq!(code, 200);
    assert!(body.starts_with('['), "{body}");

    let (code, body) = get(addr, "/machines/0");
    assert_eq!(code, 200);
    assert!(body.contains("\"task_list\""), "{body}");

    let (code, body) = get(addr, "/debug/events");
    assert_eq!(code, 200);
    assert!(body.starts_with('['), "{body}");

    let (code, body) = post(addr, "/query", "SELECT id, tasks FROM machines ORDER BY id");
    assert_eq!(code, 200);
    assert!(body.contains("\"columns\":[\"id\",\"tasks\"]"), "{body}");

    let (code, _) = post(addr, "/actions/protection?enabled=false", "");
    assert_eq!(code, 202);
    sh.tick();
    assert!(!sh.inner().protection_enabled());
    let (code, _) = post(addr, "/actions/protection?enabled=true", "");
    assert_eq!(code, 202);
    sh.tick();
    assert!(sh.inner().protection_enabled());

    sh.shutdown_server();
}

#[test]
fn hostile_input_never_panics() {
    let (mut sh, addr) = boot();

    // Malformed request line.
    let (code, _) = raw(addr, b"GARBAGE\r\n\r\n");
    assert_eq!(code, 400);
    let (code, _) = raw(addr, b"GET /too many words here\r\n\r\n");
    assert_eq!(code, 400);
    // HTTP/0.9-style and bad versions.
    let (code, _) = raw(addr, b"GET / SPDY/99\r\n\r\n");
    assert_eq!(code, 400);
    // Unsupported method.
    let (code, _) = raw(addr, b"DELETE / HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(code, 405);
    // Unknown routes.
    let (code, _) = get(addr, "/no/such/route");
    assert_eq!(code, 404);
    let (code, _) = post(addr, "/actions/self-destruct?job=1&index=0", "");
    assert_eq!(code, 404);
    // Oversized headers.
    let mut big = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
    big.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(16 * 1024)).as_bytes());
    let (code, _) = raw(addr, &big);
    assert_eq!(code, 431);
    // Oversized declared body.
    let (code, _) = raw(
        addr,
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert_eq!(code, 413);
    // Nonsense content-length.
    let (code, _) = raw(
        addr,
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(code, 400);
    // Bad SQL is a 400, not a panic.
    let (code, _) = post(addr, "/query", "DROP TABLE incidents");
    assert_eq!(code, 400);
    // Bad action parameters.
    let (code, _) = post(addr, "/actions/cap?job=x&index=y&rate=z", "");
    assert_eq!(code, 400);
    let (code, _) = post(addr, "/actions/cap?job=1&index=0&rate=-4", "");
    assert_eq!(code, 400);

    // Mid-request disconnects: write a partial request and hang up.
    for partial in [
        &b"GET /metr"[..],
        &b"POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\nSELE"[..],
    ] {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(partial).expect("write");
        drop(s);
    }

    // The server survived all of it and still answers.
    let (code, body) = get(addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let text = sh
        .inner()
        .telemetry()
        .prometheus_text()
        .expect("telemetry on");
    assert!(
        text.contains("cpi_serve_handler_panics_total 0"),
        "a handler panicked:\n{text}"
    );

    sh.shutdown_server();
}

/// Reads one full response off a keep-alive socket (connection stays
/// open), returning (status, raw wire bytes of that response). `buf`
/// carries bytes read past the response boundary — with pipelining,
/// one `read()` may return pieces of several responses.
fn read_one_response(sock: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, Vec<u8>) {
    let mut chunk = [0u8; 4096];
    loop {
        match scan_response(buf) {
            ScannedResponse::Complete { status, consumed } => {
                let wire = buf[..consumed].to_vec();
                buf.drain(..consumed);
                return (status, wire);
            }
            ScannedResponse::Partial => {
                let n = sock.read(&mut chunk).expect("read");
                assert!(n > 0, "connection closed mid-response");
                buf.extend_from_slice(&chunk[..n]);
            }
            ScannedResponse::Malformed => panic!("malformed response: {buf:?}"),
        }
    }
}

#[test]
fn slowloris_trickle_completes_but_stall_gets_408() {
    let cfg = ServerConfig {
        read_timeout_ms: 600,
        keep_alive_idle_ms: 10_000,
        ..ServerConfig::default()
    };
    let (mut sh, addr) = boot_with(cfg);

    // Byte-at-a-time headers that finish inside the deadline still get
    // served — slow ≠ dead.
    let mut s = TcpStream::connect(addr).expect("connect");
    for b in b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n" {
        s.write_all(std::slice::from_ref(b)).expect("write");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut carry = Vec::new();
    let (code, _) = read_one_response(&mut s, &mut carry);
    assert_eq!(code, 200);
    drop(s);

    // A request that stalls forever mid-header is answered 408 and the
    // connection is closed — it cannot pin the shard.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(b"GET /metrics HTTP/1.1\r\nX-Slow")
        .expect("write");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read to close");
    let (code, _) = parse_response(&out);
    assert_eq!(code, 408, "stalled request should time out");

    let (code, _) = get(addr, "/healthz");
    assert_eq!(code, 200);
    sh.shutdown_server();
    drop(sh);
}

#[test]
fn pipelined_requests_against_live_harness() {
    let (mut sh, addr) = boot();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(
        b"GET /healthz HTTP/1.1\r\n\r\nGET /version HTTP/1.1\r\n\r\nGET /incidents HTTP/1.1\r\n\r\n",
    )
    .expect("write");
    let mut carry = Vec::new();
    let (code, _) = read_one_response(&mut s, &mut carry);
    assert_eq!(code, 200);
    let (code, wire) = read_one_response(&mut s, &mut carry);
    assert_eq!(code, 200);
    assert!(
        String::from_utf8_lossy(&wire).contains("cpi2-serve"),
        "second pipelined response is /version"
    );
    let (code, wire) = read_one_response(&mut s, &mut carry);
    assert_eq!(code, 200);
    assert!(
        String::from_utf8_lossy(&wire)
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "/incidents streams"
    );
    // The connection is still usable afterwards.
    s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("write");
    let (code, _) = read_one_response(&mut s, &mut carry);
    assert_eq!(code, 200);
    sh.shutdown_server();
}

#[test]
fn mid_chunk_disconnect_is_survived() {
    let (mut sh, addr) = boot();
    // Start reading a chunked response, then vanish mid-body.
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /incidents HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let mut first = [0u8; 16];
        let _ = s.read(&mut first); // some of the head, not all of the body
        drop(s); // RST or FIN mid-chunk
    }
    // Shards are all still alive and answering.
    for _ in 0..4 {
        let (code, _) = get(addr, "/healthz");
        assert_eq!(code, 200);
    }
    let text = sh
        .inner()
        .telemetry()
        .prometheus_text()
        .expect("telemetry on");
    assert!(
        text.contains("cpi_serve_handler_panics_total 0"),
        "a handler panicked:\n{text}"
    );
    sh.shutdown_server();
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let cfg = ServerConfig {
        keep_alive_idle_ms: 300,
        read_timeout_ms: 5_000,
        ..ServerConfig::default()
    };
    let (mut sh, addr) = boot_with(cfg);
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    let mut carry = Vec::new();
    let (code, _) = read_one_response(&mut s, &mut carry);
    assert_eq!(code, 200);
    // Go idle past the keep-alive budget: the server reaps us (EOF),
    // it does not wait for the (longer) read timeout.
    s.set_read_timeout(Some(Duration::from_millis(3_000)))
        .expect("timeout");
    let mut buf = [0u8; 64];
    let n = s.read(&mut buf).expect("reap should be a clean close");
    assert_eq!(n, 0, "expected EOF from idle reap, got {n} bytes");
    sh.shutdown_server();
}
