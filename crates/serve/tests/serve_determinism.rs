//! Serving must be strictly observational: the same seed produces a
//! bit-identical incident stream whether or not an HTTP server is
//! attached and being hammered by concurrent clients. This is the
//! serve-crate extension of the workspace determinism contract
//! (`tests/determinism.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, Platform, SimDuration};
use cpi2::telemetry::Telemetry;
use cpi2_serve::{ServeHarness, ServerConfig};

const SEED: u64 = 0x0DE7_E121;
const CLIENTS: usize = 32;
const REQUESTS_PER_CLIENT: usize = 8;

fn build_system() -> Cpi2Harness {
    let telemetry = Telemetry::enabled();
    let mut cluster = Cluster::new(ClusterConfig {
        seed: SEED,
        telemetry: telemetry.clone(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 8);
    cpi2::workloads::submit_typical_mix(&mut cluster, 1, SEED);
    let config = Cpi2Config {
        spec_refresh_hours: 1,
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    Cpi2Harness::new(cluster, config)
}

fn client(addr: std::net::SocketAddr, i: usize) -> (usize, usize) {
    let mut ok = 0;
    let mut server_errors = 0;
    let paths: [&str; 4] = ["/metrics", "/incidents", "/debug/events", "/metrics.json"];
    for n in 0..REQUESTS_PER_CLIENT {
        // `Connection: close` so the keep-alive server ends each
        // exchange and `read_to_string` sees EOF.
        let req = if n % 4 == 3 {
            let sql = "SELECT count(*) FROM samples";
            format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{sql}",
                sql.len()
            )
        } else {
            format!(
                "GET {} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                paths[(i + n) % 4]
            )
        };
        let Ok(mut s) = TcpStream::connect(addr) else {
            continue;
        };
        if s.write_all(req.as_bytes()).is_err() {
            continue;
        }
        let mut out = String::new();
        if s.read_to_string(&mut out).is_err() {
            continue;
        }
        let status: u16 = out
            .split(' ')
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        match status {
            200..=299 => ok += 1,
            // 503 = bounded accept queue refusing under burst: legitimate
            // back-pressure, not a server failure.
            503 => {}
            500..=599 => server_errors += 1,
            _ => {}
        }
    }
    (ok, server_errors)
}

#[test]
fn tick_stream_is_bit_identical_with_server_attached() {
    let run = SimDuration::from_mins(90);

    // Reference: no server anywhere near the system.
    let mut bare = build_system();
    bare.run_for(run);
    let bare_lines = bare.incident_lines();
    let bare_now = bare.cluster.now();
    let bare_caps = bare.caps_applied();

    // Same seed, but resident: 32 concurrent clients scrape and query
    // while the fleet ticks at full rate, with delta-snapshot
    // publishing on (the default; restated here because bit-identity
    // under deltas is exactly what this test certifies).
    let mut sh = ServeHarness::new(build_system());
    sh.set_full_snapshot_every(64);
    let addr = sh
        .serve("127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| thread::spawn(move || client(addr, i)))
        .collect();
    sh.run_for(run);
    let mut ok_total = 0;
    let mut err_total = 0;
    for c in clients {
        let (ok, errs) = c.join().expect("client thread");
        ok_total += ok;
        err_total += errs;
    }
    sh.shutdown_server();
    let served = sh.into_inner();

    // The clients really exercised the server, and nothing 5xx'd.
    assert!(
        ok_total > 0,
        "expected at least one successful scrape from {CLIENTS} clients"
    );
    assert_eq!(err_total, 0, "server returned 5xx under load");
    let text = served.telemetry().prometheus_text().expect("telemetry on");
    assert!(
        text.contains("cpi_serve_handler_panics_total 0"),
        "handler panicked:\n{text}"
    );

    // Bit-identical simulation: same clock, same caps, same incident
    // stream, line for line.
    assert_eq!(served.cluster.now(), bare_now, "sim clocks diverged");
    assert_eq!(served.caps_applied(), bare_caps, "cap counts diverged");
    let served_lines = served.incident_lines();
    assert_eq!(
        served_lines, bare_lines,
        "incident streams diverged between served and bare runs"
    );
}

#[test]
fn operator_actions_apply_at_tick_boundaries_only() {
    // Actions enqueued mid-tick do nothing until the next tick() call —
    // the deterministic injection point.
    let mut sh = ServeHarness::new(build_system());
    let state = sh.state();
    state
        .actions
        .push(cpi2_serve::OperatorAction::SetProtection(false));
    assert!(sh.inner().protection_enabled(), "action applied too early");
    sh.tick();
    assert!(
        !sh.inner().protection_enabled(),
        "action not applied at tick"
    );
    assert_eq!(state.actions.pending(), 0);
}
