//! End-to-end incident tracing: a planted antagonist produces an
//! incident whose trace carries the complete span chain — sample window
//! → 2σ violation → identification → decision → amelioration → recovery
//! — and `GET /incidents/{id}/trace` serves it.

use std::io::{Read, Write};
use std::net::TcpStream;

use cpi2::core::{Cpi2Config, TraceStage};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::{CacheThrasher, LsService};
use cpi2_serve::{ServeHarness, ServerConfig};

/// The `end_to_end.rs` planted-antagonist recipe: six spread victim
/// tasks learn a clean spec, then a cache thrasher lands on one machine.
fn planted_antagonist_system(seed: u64) -> Cpi2Harness {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("frontend", 6, 1.0),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.0,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    Cpi2Harness::new(cluster, config)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("write");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    let status: u16 = out
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn planted_antagonist_yields_complete_trace_chain() {
    let mut system = planted_antagonist_system(7);

    // Learn the spec alone, then plant the antagonist.
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 1, 1.0),
            true,
            Box::new(|_| Box::new(CacheThrasher::new(8.0, 300, 300, 99))),
        )
        .expect("placement");
    // Detection + cap, then enough capped time for the victim's CPI to
    // return under threshold (the recovery span).
    system.run_for(SimDuration::from_mins(60));

    let acted: Vec<_> = system
        .incidents()
        .iter()
        .filter(|mi| mi.incident.acted())
        .collect();
    assert!(!acted.is_empty(), "expected an acted incident");

    // At least one acted incident must carry the full six-stage chain.
    let mut best: Vec<&'static str> = Vec::new();
    let mut best_id = None;
    for mi in &acted {
        let id = mi.incident.trace_id;
        assert!(!id.is_none(), "acted incident without a trace id");
        let Some(spans) = system.incident_trace(id) else {
            continue;
        };
        let stages: Vec<&'static str> = spans.iter().map(|s| s.stage.name()).collect();
        // Spans arrive in causal order within a trace.
        let seqs: Vec<u8> = spans.iter().map(|s| s.stage.seq()).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "spans out of causal order: {stages:?}");
        if stages.len() > best.len() {
            best = stages;
            best_id = Some(id);
        }
    }
    let complete: Vec<&str> = [
        TraceStage::SampleWindow,
        TraceStage::Violation,
        TraceStage::Identification,
        TraceStage::Decision,
        TraceStage::Amelioration,
        TraceStage::Recovery,
    ]
    .iter()
    .map(|s| s.name())
    .collect();
    assert_eq!(
        best, complete,
        "no acted incident carried the complete span chain"
    );
    let trace_id = best_id.expect("complete chain has an id");

    // The same chain is served over HTTP.
    let mut sh = ServeHarness::new(system);
    sh.tick(); // publish a snapshot carrying the traces
    let addr = sh
        .serve("127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let (code, body) = get(addr, &format!("/incidents/{trace_id}/trace"));
    assert_eq!(code, 200, "{body}");
    for stage in &complete {
        assert!(
            body.contains(stage),
            "missing {stage} in served trace: {body}"
        );
    }
    assert!(
        body.contains(&format!("\"trace\":\"{trace_id}\"")),
        "{body}"
    );

    // The incident list links to the same trace.
    let (code, list) = get(addr, "/incidents");
    assert_eq!(code, 200);
    assert!(list.contains(&trace_id.to_string()), "{list}");

    sh.shutdown_server();
}
