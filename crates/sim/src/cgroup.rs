//! Resource-management containers with CFS bandwidth control.
//!
//! Every task runs inside a cgroup that limits its CPU use (§2). CPU
//! hard-capping is implemented the way the paper does it — Linux CFS
//! bandwidth control ([Turner et al.], §5): a quota of runnable
//! microseconds per enforcement period, e.g. 25 ms per 250 ms window
//! for a cap of 0.1 CPU-sec/sec.
//!
//! [Turner et al.]: https://www.kernel.org/doc/Documentation/scheduler/sched-bwc.txt

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Monotonic hardware-counter block accumulated per cgroup.
///
/// These are the raw counters the `cpi2-perf` sampler reads in counting
/// mode; `CPU_CLK_UNHALTED.REF` maps to [`cycles`](CounterBlock::cycles)
/// and `INSTRUCTIONS_RETIRED` to
/// [`instructions`](CounterBlock::instructions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterBlock {
    /// Reference cycles consumed.
    pub cycles: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// L2 cache misses.
    pub l2_misses: f64,
    /// L3 (last-level) cache misses.
    pub l3_misses: f64,
    /// Memory controller requests (cache lines transferred).
    pub mem_lines: f64,
    /// Inter-cgroup context switches involving this cgroup.
    pub context_switches: u64,
    /// CPU time consumed, in microseconds (CPU-µs, may exceed wall time on
    /// multi-core machines).
    pub cpu_time_us: f64,
}

impl CounterBlock {
    /// Component-wise difference `self − earlier` (for delta reads).
    ///
    /// The float fields go negative when `earlier` is actually later (a
    /// counter reset — e.g. the task's machine crashed and respawned it);
    /// readers use that sign as the reset signal, so the unsigned field
    /// saturates rather than panicking.
    pub fn delta(&self, earlier: &CounterBlock) -> CounterBlock {
        CounterBlock {
            cycles: self.cycles - earlier.cycles,
            instructions: self.instructions - earlier.instructions,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l3_misses: self.l3_misses - earlier.l3_misses,
            mem_lines: self.mem_lines - earlier.mem_lines,
            context_switches: self
                .context_switches
                .saturating_sub(earlier.context_switches),
            cpu_time_us: self.cpu_time_us - earlier.cpu_time_us,
        }
    }

    /// Cycles per instruction over this block; `None` when no instructions
    /// retired.
    pub fn cpi(&self) -> Option<f64> {
        if self.instructions > 0.0 {
            Some(self.cycles / self.instructions)
        } else {
            None
        }
    }
}

/// State of a CPU hard cap applied to a cgroup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardCap {
    /// Allowed CPU rate while capped, in CPU-sec/sec (e.g. 0.1 or 0.01).
    pub cpu_rate: f64,
    /// When the cap expires.
    pub until: SimTime,
}

/// A resource-management container for one task's process tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cgroup {
    /// CFS enforcement period (the paper's example uses 250 ms).
    period: SimDuration,
    /// Long-term CPU reservation/limit in CPU-sec/sec (cores); `None`
    /// means uncapped up to machine capacity.
    limit: Option<f64>,
    /// Currently active hard cap, if any.
    cap: Option<HardCap>,
    /// Accumulated counters.
    counters: CounterBlock,
    /// Total time the group spent throttled by bandwidth control (µs).
    throttled_us: i64,
}

impl Default for Cgroup {
    fn default() -> Self {
        Cgroup::new(None)
    }
}

impl Cgroup {
    /// Creates a cgroup with an optional long-term CPU limit (CPU-sec/sec).
    ///
    /// # Panics
    ///
    /// Panics if a provided limit is not positive.
    pub fn new(limit: Option<f64>) -> Self {
        if let Some(l) = limit {
            assert!(l > 0.0, "Cgroup: CPU limit must be positive");
        }
        Cgroup {
            period: SimDuration(250_000), // 250 ms, as in §5.
            limit,
            cap: None,
            counters: CounterBlock::default(),
            throttled_us: 0,
        }
    }

    /// The CFS enforcement period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Quota of runnable microseconds per period under the current
    /// effective rate limit; `None` when unconstrained.
    pub fn quota_us(&self, now: SimTime) -> Option<i64> {
        self.effective_rate(now)
            .map(|r| (r * self.period.as_us() as f64) as i64)
    }

    /// Applies a hard cap of `cpu_rate` CPU-sec/sec until `until`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_rate` is not positive.
    pub fn apply_hard_cap(&mut self, cpu_rate: f64, until: SimTime) {
        assert!(cpu_rate > 0.0, "apply_hard_cap: rate must be positive");
        self.cap = Some(HardCap { cpu_rate, until });
    }

    /// Removes any active hard cap.
    pub fn remove_hard_cap(&mut self) {
        self.cap = None;
    }

    /// The long-term CPU reservation/limit in CPU-sec/sec, ignoring any
    /// temporary hard cap. This is what admission control reserves for the
    /// task; use [`Cgroup::effective_rate`] for the currently enforced rate.
    pub fn limit(&self) -> Option<f64> {
        self.limit
    }

    /// The active hard cap, if it has not expired by `now`.
    pub fn hard_cap(&self, now: SimTime) -> Option<HardCap> {
        self.cap.filter(|c| c.until > now)
    }

    /// Effective CPU rate limit at `now` (min of long-term limit and any
    /// live hard cap); `None` when unconstrained.
    pub fn effective_rate(&self, now: SimTime) -> Option<f64> {
        match (self.limit, self.hard_cap(now)) {
            (Some(l), Some(c)) => Some(l.min(c.cpu_rate)),
            (Some(l), None) => Some(l),
            (None, Some(c)) => Some(c.cpu_rate),
            (None, None) => None,
        }
    }

    /// Clamps a CPU request (in cores) to what bandwidth control allows at
    /// `now`, recording throttled time over the tick duration `dt`.
    pub fn clamp_cpu(&mut self, want_cores: f64, now: SimTime, dt: SimDuration) -> f64 {
        match self.effective_rate(now) {
            Some(rate) if want_cores > rate => {
                let denied = want_cores - rate;
                self.throttled_us += (denied * dt.as_us() as f64 / want_cores.max(1e-9)) as i64;
                rate
            }
            _ => want_cores,
        }
    }

    /// Drops an expired cap (housekeeping; callers may also just let
    /// [`Cgroup::hard_cap`] filter it).
    pub fn expire_cap(&mut self, now: SimTime) {
        if let Some(c) = self.cap {
            if c.until <= now {
                self.cap = None;
            }
        }
    }

    /// Adds a tick's worth of activity to the counters.
    pub fn charge(&mut self, block: &CounterBlock) {
        self.counters.cycles += block.cycles;
        self.counters.instructions += block.instructions;
        self.counters.l2_misses += block.l2_misses;
        self.counters.l3_misses += block.l3_misses;
        self.counters.mem_lines += block.mem_lines;
        self.counters.context_switches += block.context_switches;
        self.counters.cpu_time_us += block.cpu_time_us;
    }

    /// Current monotonic counter values.
    pub fn counters(&self) -> &CounterBlock {
        &self.counters
    }

    /// Total throttled time in microseconds.
    pub fn throttled_us(&self) -> i64 {
        self.throttled_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta() {
        let a = CounterBlock {
            cycles: 100.0,
            instructions: 50.0,
            ..Default::default()
        };
        let b = CounterBlock {
            cycles: 300.0,
            instructions: 150.0,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.cycles, 200.0);
        assert_eq!(d.cpi(), Some(2.0));
    }

    #[test]
    fn cpi_none_without_instructions() {
        assert_eq!(CounterBlock::default().cpi(), None);
    }

    #[test]
    fn uncapped_cgroup_grants_everything() {
        let mut g = Cgroup::new(None);
        let got = g.clamp_cpu(7.5, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(got, 7.5);
        assert_eq!(g.throttled_us(), 0);
    }

    #[test]
    fn long_term_limit_clamps() {
        let mut g = Cgroup::new(Some(2.0));
        let got = g.clamp_cpu(4.0, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(got, 2.0);
        assert!(g.throttled_us() > 0);
    }

    #[test]
    fn hard_cap_paper_quota() {
        // A 0.1 CPU-sec/sec cap over a 250 ms period is 25 ms of quota.
        let mut g = Cgroup::new(None);
        g.apply_hard_cap(0.1, SimTime::from_mins(5));
        assert_eq!(g.quota_us(SimTime::ZERO), Some(25_000));
    }

    #[test]
    fn hard_cap_expires() {
        let mut g = Cgroup::new(None);
        g.apply_hard_cap(0.1, SimTime::from_secs(10));
        assert!(g.hard_cap(SimTime::from_secs(5)).is_some());
        assert!(g.hard_cap(SimTime::from_secs(10)).is_none());
        let got = g.clamp_cpu(3.0, SimTime::from_secs(11), SimDuration::from_secs(1));
        assert_eq!(got, 3.0);
    }

    #[test]
    fn effective_rate_takes_min() {
        let mut g = Cgroup::new(Some(2.0));
        g.apply_hard_cap(0.1, SimTime::from_secs(100));
        assert_eq!(g.effective_rate(SimTime::ZERO), Some(0.1));
        g.remove_hard_cap();
        assert_eq!(g.effective_rate(SimTime::ZERO), Some(2.0));
    }

    #[test]
    fn expire_cap_housekeeping() {
        let mut g = Cgroup::new(None);
        g.apply_hard_cap(0.5, SimTime::from_secs(1));
        g.expire_cap(SimTime::from_secs(2));
        assert_eq!(g.effective_rate(SimTime::from_secs(2)), None);
    }

    #[test]
    fn charge_accumulates() {
        let mut g = Cgroup::new(None);
        let block = CounterBlock {
            cycles: 10.0,
            instructions: 5.0,
            l3_misses: 1.0,
            context_switches: 2,
            cpu_time_us: 100.0,
            ..Default::default()
        };
        g.charge(&block);
        g.charge(&block);
        assert_eq!(g.counters().cycles, 20.0);
        assert_eq!(g.counters().context_switches, 4);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_cap() {
        let mut g = Cgroup::new(None);
        g.apply_hard_cap(0.0, SimTime::from_secs(1));
    }
}
