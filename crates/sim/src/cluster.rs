//! The cluster: machines + scheduler + job lifecycle under one clock.
//!
//! A [`Cluster`] owns a set of heterogeneous machines and the central
//! scheduler, advances them in lock-step ticks, and manages job submission,
//! task exits/restarts, kills and migrations — the substrate every CPI²
//! experiment runs on.

use crate::job::{JobId, JobSpec, TaskId};
use crate::machine::{Machine, MachineId, TaskExit};
use crate::platform::Platform;
use crate::schedule::{ClusterEvent, EventQueue};
use crate::scheduler::{PlacementError, Scheduler};
use crate::task::{TaskInstance, TaskModel};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use cpi2_telemetry::{Counter, Histo, Telemetry};
use std::collections::BTreeMap;
use std::time::Instant;

/// Factory producing a fresh behaviour model for task `index` of a job.
///
/// Called at submission for every task, and again when a task is restarted
/// or migrated.
pub type ModelFactory = Box<dyn FnMut(u32) -> Box<dyn TaskModel>>;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Simulation tick length (default 1 s).
    pub tick: SimDuration,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Batch overcommit factor for the scheduler.
    pub overcommit: f64,
    /// Event-trace retention.
    pub trace_capacity: usize,
    /// §2's speculative-overcommit correction: when a batch task has been
    /// starved by machine pressure for this many consecutive ticks, the
    /// scheduler preempts it and restarts it on another machine. `None`
    /// disables preemption.
    pub preempt_starved_batch_after: Option<u32>,
    /// Worker threads for the per-machine phase of each tick. `1` runs the
    /// legacy serial path; higher values shard machines across a
    /// persistent worker pool by [`MachineId`] range. Traces and counters
    /// are bit-identical across any setting (see `Cluster::step`).
    /// Defaults to [`std::thread::available_parallelism`].
    pub parallelism: usize,
    /// Telemetry sink for simulator metrics (tick counts, per-phase
    /// durations, CFS throttle events, worker-pool utilization). The
    /// default is a disabled no-op handle: metric calls cost one branch
    /// and wall clocks are never read.
    pub telemetry: Telemetry,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            tick: SimDuration::from_secs(1),
            seed: 0,
            overcommit: 1.5,
            trace_capacity: 100_000,
            preempt_starved_batch_after: None,
            parallelism: default_parallelism(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Cached telemetry handles for the simulator core.
#[derive(Debug, Clone, Default)]
struct SimMetrics {
    /// Ticks executed (`Cluster::step` calls).
    ticks: Counter,
    /// Wall-clock µs of the parallel per-machine phase of each tick.
    phase_machines: Histo,
    /// Wall-clock µs of the serial commit phase of each tick.
    phase_commit: Histo,
    /// CFS-bandwidth throttle events: machine ticks where the cgroup
    /// model granted less CPU than tasks wanted.
    throttle_events: Counter,
    /// Worker-pool gauges/histograms, shared with [`crate::pool::TickPool`].
    pool: crate::pool::PoolMetrics,
}

impl SimMetrics {
    fn new(telemetry: &Telemetry) -> SimMetrics {
        SimMetrics {
            ticks: telemetry.counter("cpi_sim_ticks_total", &[]),
            phase_machines: telemetry
                .histogram("cpi_sim_tick_phase_duration_us", &[("phase", "machines")]),
            phase_commit: telemetry
                .histogram("cpi_sim_tick_phase_duration_us", &[("phase", "commit")]),
            throttle_events: telemetry.counter("cpi_sim_throttle_events_total", &[]),
            pool: crate::pool::PoolMetrics::new(telemetry),
        }
    }

    fn enabled(&self) -> bool {
        self.ticks.enabled()
    }
}

/// The machine's available hardware parallelism (≥ 1).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

struct JobInfo {
    spec: JobSpec,
    factory: ModelFactory,
    restart_on_exit: bool,
    /// task index → (machine, cache footprint the scheduler accounted).
    // BTreeMap: rollback and accounting iterate placements, and the
    // float arithmetic they drive must not depend on hash order.
    placements: BTreeMap<u32, (MachineId, f64)>,
    next_index: u32,
}

/// A simulated shared compute cluster.
///
/// # Examples
///
/// ```
/// use cpi2_sim::{
///     Cluster, ClusterConfig, ConstantLoad, JobSpec, Platform, ResourceProfile, SimDuration,
/// };
///
/// let mut cluster = Cluster::new(ClusterConfig::default());
/// cluster.add_machines(&Platform::westmere(), 2);
/// cluster
///     .submit_job(
///         JobSpec::latency_sensitive("svc", 4, 1.0),
///         true,
///         Box::new(|_| Box::new(ConstantLoad::new(1.0, 4, ResourceProfile::cache_heavy()))),
///     )
///     .unwrap();
/// cluster.run_for(SimDuration::from_mins(1));
/// let tasks: usize = cluster.machines().iter().map(|m| m.task_count()).sum();
/// assert_eq!(tasks, 4);
/// ```
pub struct Cluster {
    config: ClusterConfig,
    machines: Vec<Machine>,
    scheduler: Scheduler,
    jobs: BTreeMap<JobId, JobInfo>,
    next_job: u32,
    now: SimTime,
    trace: Trace,
    events: EventQueue,
    /// Lazily spawned on the first parallel tick; sized to the effective
    /// worker count and respawned if that count changes.
    pool: Option<crate::pool::TickPool>,
    metrics: SimMetrics,
    /// Fleet-wide throttle-event total observed after the previous tick,
    /// so each tick adds only its delta to the counter.
    last_throttle_total: u64,
    /// Reused per-tick exit buffer (drained by the commit phase).
    exit_scratch: Vec<(MachineId, TaskExit)>,
    /// Reused per-machine exit staging buffer for the serial path.
    tick_exits: Vec<TaskExit>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let scheduler = Scheduler::new(config.overcommit, config.seed);
        let trace = Trace::new(config.trace_capacity);
        let metrics = SimMetrics::new(&config.telemetry);
        Cluster {
            config,
            machines: Vec::new(),
            scheduler,
            jobs: BTreeMap::new(),
            next_job: 0,
            now: SimTime::ZERO,
            trace,
            events: EventQueue::new(),
            pool: None,
            metrics,
            last_throttle_total: 0,
            exit_scratch: Vec::new(),
            tick_exits: Vec::new(),
        }
    }

    /// The telemetry handle this cluster reports to (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.config.telemetry
    }

    /// Schedules a deferred event (job arrival, scripted kill/cap/migrate)
    /// to execute at simulated time `at`.
    pub fn schedule_event(&mut self, at: SimTime, event: ClusterEvent) {
        self.events.schedule(at, event);
    }

    /// Deferred events still pending.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Adds `count` machines of the given platform; returns their ids.
    pub fn add_machines(&mut self, platform: &Platform, count: u32) -> Vec<MachineId> {
        let mut ids = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = MachineId(self.machines.len() as u32);
            self.machines
                .push(Machine::new(id, platform.clone(), self.config.seed));
            self.scheduler
                .register_machine(id, platform.cores, platform.l3_mb);
            ids.push(id);
        }
        ids
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The tick length.
    pub fn tick_len(&self) -> SimDuration {
        self.config.tick
    }

    /// All machines.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// One machine by id.
    pub fn machine(&self, id: MachineId) -> Option<&Machine> {
        self.machines.get(id.0 as usize)
    }

    /// Mutable machine access (agents apply caps through this).
    pub fn machine_mut(&mut self, id: MachineId) -> Option<&mut Machine> {
        self.machines.get_mut(id.0 as usize)
    }

    /// The scheduler (to add anti-affinity constraints or switch policy).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Read-only scheduler access (reservation inspection).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Records a free-form note in the trace.
    pub fn note(&mut self, text: impl Into<String>) {
        self.trace.record(self.now, TraceEvent::Note(text.into()));
    }

    /// Submits a job, placing all of its tasks. `restart_on_exit` controls
    /// whether the cluster respawns tasks that exit on their own (frameworks
    /// like MapReduce that manage their own workers pass `false`).
    ///
    /// # Errors
    ///
    /// Fails if any task cannot be placed; tasks placed so far are rolled
    /// back.
    pub fn submit_job(
        &mut self,
        spec: JobSpec,
        restart_on_exit: bool,
        mut factory: ModelFactory,
    ) -> Result<JobId, PlacementError> {
        let job = JobId(self.next_job);
        let mut placements: BTreeMap<u32, (MachineId, f64)> = BTreeMap::new();
        for index in 0..spec.task_count {
            // Build the model first: cache-aware placement needs its
            // footprint.
            let model = factory(index);
            let cache_mb = model.profile().cache_mb;
            match self
                .scheduler
                .place(job, spec.class, spec.cpu_reservation, cache_mb)
            {
                Ok(machine) => {
                    let id = TaskId { job, index };
                    self.machines[machine.0 as usize].add_task(
                        TaskInstance { id, model },
                        spec.name.clone(),
                        spec.class,
                        spec.priority,
                        None,
                    );
                    self.trace
                        .record(self.now, TraceEvent::TaskPlaced { task: id, machine });
                    placements.insert(index, (machine, cache_mb));
                }
                Err(e) => {
                    // Roll back what we placed.
                    for (&index, &(machine, cache_mb)) in &placements {
                        let id = TaskId { job, index };
                        self.machines[machine.0 as usize].remove_task(id);
                        self.scheduler.release(
                            machine,
                            job,
                            spec.class,
                            spec.cpu_reservation,
                            cache_mb,
                        );
                    }
                    return Err(e);
                }
            }
        }
        self.trace.record(
            self.now,
            TraceEvent::JobSubmitted {
                job,
                name: spec.name.clone(),
            },
        );
        self.next_job += 1;
        self.jobs.insert(
            job,
            JobInfo {
                next_index: spec.task_count,
                spec,
                factory,
                restart_on_exit,
                placements,
            },
        );
        Ok(job)
    }

    /// Machine currently hosting a task.
    pub fn locate(&self, task: TaskId) -> Option<MachineId> {
        self.jobs
            .get(&task.job)
            .and_then(|j| j.placements.get(&task.index))
            .map(|&(m, _)| m)
    }

    /// The spec of a job.
    pub fn job_spec(&self, job: JobId) -> Option<&JobSpec> {
        self.jobs.get(&job).map(|j| &j.spec)
    }

    /// Iterates `(JobId, &JobSpec)` for all submitted jobs.
    pub fn jobs(&self) -> impl Iterator<Item = (JobId, &JobSpec)> {
        self.jobs.iter().map(|(&id, info)| (id, &info.spec))
    }

    /// Kills a task outright (the operator action of §5). Returns `true`
    /// if the task was running.
    pub fn kill_task(&mut self, task: TaskId) -> bool {
        let Some(machine) = self.locate(task) else {
            return false;
        };
        let removed = self.machines[machine.0 as usize].remove_task(task);
        if removed {
            let info = self.jobs.get_mut(&task.job).expect("job exists");
            let cache_mb = info
                .placements
                .remove(&task.index)
                .map(|(_, c)| c)
                .unwrap_or(0.0);
            self.scheduler.release(
                machine,
                task.job,
                info.spec.class,
                info.spec.cpu_reservation,
                cache_mb,
            );
            self.trace
                .record(self.now, TraceEvent::TaskKilled { task, machine });
        }
        removed
    }

    /// Kills a task and restarts a replacement on a different machine —
    /// the paper's "version of task migration" (§5). Returns the new
    /// machine. The replacement gets a fresh model from the job's factory
    /// and a **new task index** (restarted work loses progress, as the
    /// paper notes).
    ///
    /// # Errors
    ///
    /// Fails if the replacement cannot be placed (the kill still happens).
    pub fn migrate_task(&mut self, task: TaskId) -> Result<MachineId, PlacementError> {
        let from = self.locate(task);
        if !self.kill_task(task) {
            return Err(PlacementError::NoCapacity);
        }
        let info = self.jobs.get_mut(&task.job).expect("job exists");
        let (class, cpu, name) = (
            info.spec.class,
            info.spec.cpu_reservation,
            info.spec.name.clone(),
        );
        let priority = info.spec.priority;
        let new_index = info.next_index;
        let model = (info.factory)(new_index);
        let cache_mb = model.profile().cache_mb;
        let machine = self
            .scheduler
            .place_excluding(task.job, class, cpu, cache_mb, from)?;
        let info = self.jobs.get_mut(&task.job).expect("job exists");
        info.next_index += 1;
        let new_id = TaskId {
            job: task.job,
            index: new_index,
        };
        info.placements.insert(new_index, (machine, cache_mb));
        self.machines[machine.0 as usize].add_task(
            TaskInstance { id: new_id, model },
            name,
            class,
            priority,
            None,
        );
        self.trace.record(
            self.now,
            TraceEvent::TaskMigrated {
                task,
                from: from.expect("located above"),
                to: machine,
            },
        );
        Ok(machine)
    }

    /// Applies a CPU hard cap to a task's cgroup, recording it in the trace.
    /// Returns `false` if the task is not running.
    pub fn apply_hard_cap(&mut self, task: TaskId, cpu_rate: f64, until: SimTime) -> bool {
        let Some(machine) = self.locate(task) else {
            return false;
        };
        let Some(t) = self.machines[machine.0 as usize].task_mut(task) else {
            return false;
        };
        t.cgroup.apply_hard_cap(cpu_rate, until);
        self.trace.record(
            self.now,
            TraceEvent::CapApplied {
                task,
                cpu_rate,
                until,
            },
        );
        true
    }

    /// Removes any live hard cap from a task's cgroup (the probe-release
    /// path of active identification schemes). Returns `false` if the task
    /// is not running.
    pub fn remove_hard_cap(&mut self, task: TaskId) -> bool {
        let Some(machine) = self.locate(task) else {
            return false;
        };
        let Some(t) = self.machines[machine.0 as usize].task_mut(task) else {
            return false;
        };
        t.cgroup.remove_hard_cap();
        true
    }

    /// Crashes and reboots a machine: every resident task dies with it and
    /// the machine comes back empty with fresh cgroup/counter state (the
    /// same seed-derived RNG, so replays stay deterministic). Tasks from
    /// `restart_on_exit` jobs are rescheduled immediately — possibly onto
    /// the rebooted machine itself — keeping the same task index, exactly
    /// like an in-place task restart. Returns the number of tasks lost.
    pub fn crash_machine(&mut self, id: MachineId) -> usize {
        let Some(machine) = self.machines.get(id.0 as usize) else {
            return 0;
        };
        let platform = machine.platform.clone();
        let lost: Vec<TaskId> = machine.tasks().map(|t| t.id).collect();
        self.machines[id.0 as usize] = Machine::new(id, platform, self.config.seed);
        self.trace.record(
            self.now,
            TraceEvent::MachineCrashed {
                machine: id,
                tasks_lost: lost.len() as u32,
            },
        );
        let count = lost.len();
        for task in lost {
            let Some(info) = self.jobs.get_mut(&task.job) else {
                continue;
            };
            let cache_mb = info
                .placements
                .remove(&task.index)
                .map(|(_, c)| c)
                .unwrap_or(0.0);
            self.scheduler.release(
                id,
                task.job,
                info.spec.class,
                info.spec.cpu_reservation,
                cache_mb,
            );
            if info.restart_on_exit {
                let (class, cpu, name, priority) = (
                    info.spec.class,
                    info.spec.cpu_reservation,
                    info.spec.name.clone(),
                    info.spec.priority,
                );
                let model = {
                    let info = self.jobs.get_mut(&task.job).expect("job exists");
                    (info.factory)(task.index)
                };
                let cache_mb = model.profile().cache_mb;
                if let Ok(new_machine) = self.scheduler.place(task.job, class, cpu, cache_mb) {
                    let info = self.jobs.get_mut(&task.job).expect("job exists");
                    info.placements.insert(task.index, (new_machine, cache_mb));
                    self.machines[new_machine.0 as usize].add_task(
                        TaskInstance { id: task, model },
                        name,
                        class,
                        priority,
                        None,
                    );
                    self.trace.record(
                        self.now,
                        TraceEvent::TaskPlaced {
                            task,
                            machine: new_machine,
                        },
                    );
                }
            }
        }
        count
    }

    /// Advances the cluster by one tick.
    pub fn step(&mut self) {
        // Execute scripted events that are due before this tick runs.
        for event in self.events.due(self.now) {
            match event {
                ClusterEvent::SubmitJob {
                    spec,
                    restart_on_exit,
                    factory,
                } => {
                    let _ = self.submit_job(spec, restart_on_exit, factory);
                }
                ClusterEvent::KillTask(t) => {
                    self.kill_task(t);
                }
                ClusterEvent::MigrateTask(t) => {
                    let _ = self.migrate_task(t);
                }
                ClusterEvent::HardCap {
                    task,
                    cpu_rate,
                    until,
                } => {
                    self.apply_hard_cap(task, cpu_rate, until);
                }
                ClusterEvent::Note(s) => self.note(s),
            }
        }

        // Phase 1 — parallel per-machine ticks. Machines are independent
        // within a tick (each owns its RNG, tasks and counters), so they
        // are sharded across a persistent worker pool by contiguous
        // MachineId range. Exits are merged back in machine order, which
        // makes the trace bit-identical to the serial path under the same
        // seed.
        let dt = self.config.tick;
        let now = self.now;
        let measure = self.metrics.enabled();
        self.metrics.ticks.inc();
        let phase_start = measure.then(Instant::now);
        let workers = self
            .config
            .parallelism
            .max(1)
            .min(self.machines.len().max(1));
        // Exits collect into a buffer pooled across ticks (the commit
        // phase below drains it and hands it back).
        let mut all_exits = std::mem::take(&mut self.exit_scratch);
        if workers <= 1 {
            // Legacy serial path (parallelism = 1).
            let mut tmp = std::mem::take(&mut self.tick_exits);
            for m in &mut self.machines {
                let id = m.id;
                tmp.clear();
                m.tick(now, dt, &mut tmp);
                all_exits.extend(tmp.drain(..).map(|e| (id, e)));
            }
            self.tick_exits = tmp;
        } else {
            let pool = match &mut self.pool {
                Some(p) if p.workers() == workers => p,
                slot => slot.insert(crate::pool::TickPool::new(workers)),
            };
            pool.tick(
                &mut self.machines,
                now,
                dt,
                &mut all_exits,
                Some(&self.metrics.pool),
            );
        }
        self.now += dt;
        let phase_start = phase_start.map(|t| {
            self.metrics
                .phase_machines
                .record(t.elapsed().as_secs_f64() * 1e6);
            // lint: allow(clock) — telemetry-gated phase timing; the value
            // is only ever recorded to a histogram, never committed to
            // sim state.
            Instant::now()
        });
        if measure {
            // Telemetry is observational only: the throttle tally reads the
            // machines' own deterministic counters and never feeds back.
            let total: u64 = self.machines.iter().map(Machine::throttle_events).sum();
            self.metrics
                .throttle_events
                .add(total.saturating_sub(self.last_throttle_total));
            self.last_throttle_total = total;
        }

        // Phase 2 — serial commit: everything below mutates shared cluster
        // state (scheduler reservations, placements, trace, event queue)
        // and runs on the caller's thread in deterministic order.

        // Batch preemption: the scheduler guessed wrong, move the task.
        if let Some(limit) = self.config.preempt_starved_batch_after {
            let starved: Vec<TaskId> = self
                .machines
                .iter()
                .flat_map(|m| m.tasks())
                .filter(|t| {
                    t.class != crate::job::SchedClass::LatencySensitive
                        && t.starved_ticks() >= limit
                })
                .map(|t| t.id)
                .collect();
            for task in starved {
                // Best effort: if no machine has room the task stays put
                // (and keeps accruing starvation).
                let _ = self.migrate_task(task);
            }
        }
        for (machine, exit) in all_exits.drain(..) {
            self.trace.record(
                exit.at,
                TraceEvent::TaskExited {
                    task: exit.id,
                    machine,
                    capped: exit.capped,
                },
            );
            let Some(info) = self.jobs.get_mut(&exit.id.job) else {
                continue;
            };
            let old_cache = info
                .placements
                .remove(&exit.id.index)
                .map(|(_, c)| c)
                .unwrap_or(0.0);
            self.scheduler.release(
                machine,
                exit.id.job,
                info.spec.class,
                info.spec.cpu_reservation,
                old_cache,
            );
            if info.restart_on_exit {
                let (class, cpu, name, priority) = (
                    info.spec.class,
                    info.spec.cpu_reservation,
                    info.spec.name.clone(),
                    info.spec.priority,
                );
                let model = {
                    let info = self.jobs.get_mut(&exit.id.job).expect("job exists");
                    (info.factory)(exit.id.index)
                };
                let cache_mb = model.profile().cache_mb;
                if let Ok(new_machine) = self.scheduler.place(exit.id.job, class, cpu, cache_mb) {
                    let info = self.jobs.get_mut(&exit.id.job).expect("job exists");
                    info.placements
                        .insert(exit.id.index, (new_machine, cache_mb));
                    self.machines[new_machine.0 as usize].add_task(
                        TaskInstance { id: exit.id, model },
                        name,
                        class,
                        priority,
                        None,
                    );
                    self.trace.record(
                        self.now,
                        TraceEvent::TaskPlaced {
                            task: exit.id,
                            machine: new_machine,
                        },
                    );
                }
            }
        }
        self.exit_scratch = all_exits;
        if let Some(t) = phase_start {
            self.metrics
                .phase_commit
                .record(t.elapsed().as_secs_f64() * 1e6);
        }
    }

    /// Runs the cluster for a duration (whole ticks).
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        while self.now < end {
            self.step();
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("machines", &self.machines.len())
            .field("jobs", &self.jobs.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ConstantLoad, ResourceProfile};

    fn constant_factory(cpu: f64) -> ModelFactory {
        Box::new(move |_| Box::new(ConstantLoad::new(cpu, 4, ResourceProfile::compute_bound())))
    }

    fn small_cluster() -> Cluster {
        let mut c = Cluster::new(ClusterConfig::default());
        c.add_machines(&Platform::westmere(), 4);
        c
    }

    #[test]
    fn submit_places_all_tasks() {
        let mut c = small_cluster();
        let job = c
            .submit_job(
                JobSpec::latency_sensitive("svc", 8, 1.0),
                true,
                constant_factory(1.0),
            )
            .unwrap();
        let placed: usize = c.machines().iter().map(|m| m.task_count()).sum();
        assert_eq!(placed, 8);
        for i in 0..8 {
            assert!(c.locate(TaskId { job, index: i }).is_some());
        }
    }

    #[test]
    fn submit_rolls_back_on_failure() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.add_machines(&Platform::westmere(), 1); // 12 cores only.
        let err = c.submit_job(
            JobSpec::latency_sensitive("big", 4, 5.0),
            true,
            constant_factory(5.0),
        );
        assert!(err.is_err());
        assert_eq!(c.machines()[0].task_count(), 0);
        // Capacity is fully restored.
        c.submit_job(
            JobSpec::latency_sensitive("ok", 2, 5.0),
            true,
            constant_factory(5.0),
        )
        .unwrap();
    }

    #[test]
    fn step_advances_time_and_runs_tasks() {
        let mut c = small_cluster();
        c.submit_job(JobSpec::batch("b", 2, 1.0), true, constant_factory(1.0))
            .unwrap();
        c.run_for(SimDuration::from_secs(10));
        assert_eq!(c.now(), SimTime::from_secs(10));
        let total_instr: f64 = c
            .machines()
            .iter()
            .flat_map(|m| m.tasks())
            .map(|t| t.cgroup.counters().instructions)
            .sum();
        assert!(total_instr > 0.0);
    }

    #[test]
    fn kill_task_releases_capacity() {
        let mut c = small_cluster();
        let job = c
            .submit_job(JobSpec::batch("b", 1, 1.0), false, constant_factory(1.0))
            .unwrap();
        let id = TaskId { job, index: 0 };
        assert!(c.kill_task(id));
        assert!(c.locate(id).is_none());
        assert!(!c.kill_task(id));
        let placed: usize = c.machines().iter().map(|m| m.task_count()).sum();
        assert_eq!(placed, 0);
    }

    #[test]
    fn migrate_moves_task() {
        let mut c = small_cluster();
        let job = c
            .submit_job(JobSpec::batch("b", 1, 1.0), false, constant_factory(1.0))
            .unwrap();
        let old = TaskId { job, index: 0 };
        let old_machine = c.locate(old).unwrap();
        let new_machine = c.migrate_task(old).unwrap();
        assert!(c.locate(old).is_none());
        // The replacement has a fresh index.
        let replacement = TaskId { job, index: 1 };
        assert_eq!(c.locate(replacement), Some(new_machine));
        let _ = old_machine; // May equal new_machine on a tiny cluster.
    }

    #[test]
    fn hard_cap_via_cluster() {
        let mut c = small_cluster();
        let job = c
            .submit_job(
                JobSpec::best_effort("be", 1, 4.0),
                false,
                constant_factory(4.0),
            )
            .unwrap();
        let id = TaskId { job, index: 0 };
        assert!(c.apply_hard_cap(id, 0.01, SimTime::from_mins(5)));
        c.step();
        let m = c.locate(id).unwrap();
        let out = c
            .machine(m)
            .unwrap()
            .task(id)
            .unwrap()
            .task()
            .last_outcome()
            .unwrap();
        assert!(out.capped);
        assert!(out.cpu_granted <= 0.011);
    }

    #[test]
    fn restart_on_exit_respawns() {
        struct ExitOnce {
            done: bool,
        }
        impl TaskModel for ExitOnce {
            fn profile(&self) -> ResourceProfile {
                ResourceProfile::compute_bound()
            }
            fn demand(
                &mut self,
                _now: SimTime,
                _dt: SimDuration,
                _rng: &mut cpi2_stats::rng::SimRng,
            ) -> crate::task::TaskDemand {
                crate::task::TaskDemand {
                    cpu_want: 1.0,
                    threads: 1,
                }
            }
            fn observe(
                &mut self,
                _now: SimTime,
                _o: &crate::task::TickOutcome,
            ) -> crate::task::TaskAction {
                if self.done {
                    crate::task::TaskAction::Continue
                } else {
                    self.done = true;
                    crate::task::TaskAction::Exit
                }
            }
        }
        let mut c = small_cluster();
        let mut spawned = 0u32;
        let job = c
            .submit_job(
                JobSpec::latency_sensitive("flaky", 1, 1.0),
                true,
                Box::new(move |_| {
                    spawned += 1;
                    Box::new(ExitOnce { done: spawned > 1 })
                }),
            )
            .unwrap();
        c.step(); // Task exits...
        c.step(); // ...and the replacement runs.
        assert!(c.locate(TaskId { job, index: 0 }).is_some());
        let placed: usize = c.machines().iter().map(|m| m.task_count()).sum();
        assert_eq!(placed, 1);
    }

    #[test]
    fn telemetry_counts_ticks_phases_and_throttles() {
        let telemetry = Telemetry::enabled();
        let mut c = Cluster::new(ClusterConfig {
            telemetry: telemetry.clone(),
            parallelism: 2,
            ..ClusterConfig::default()
        });
        c.add_machines(&Platform::westmere(), 4);
        // Hard-cap a hungry task so the CFS bandwidth model must throttle.
        let job = c
            .submit_job(
                JobSpec::best_effort("hog", 1, 4.0),
                true,
                Box::new(|_| Box::new(ConstantLoad::new(4.0, 8, ResourceProfile::compute_bound()))),
            )
            .unwrap();
        assert!(c.apply_hard_cap(TaskId { job, index: 0 }, 0.1, SimTime::from_mins(5)));
        c.run_for(SimDuration::from_secs(5));
        let text = telemetry.prometheus_text().unwrap();
        assert!(text.contains("cpi_sim_ticks_total 5"), "{text}");
        assert!(
            text.contains("cpi_sim_tick_phase_duration_us{phase=\"machines\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("cpi_sim_tick_phase_duration_us{phase=\"commit\",quantile=\"0.5\"}"),
            "{text}"
        );
        let throttles: u64 = c.machines().iter().map(Machine::throttle_events).sum();
        assert!(throttles > 0, "oversubscribed fleet must throttle");
        assert!(
            text.contains(&format!("cpi_sim_throttle_events_total {throttles}")),
            "{text}"
        );
    }

    #[test]
    fn telemetry_disabled_reads_no_clock_and_counts_nothing() {
        let mut c = small_cluster();
        c.submit_job(JobSpec::batch("b", 2, 1.0), true, constant_factory(1.0))
            .unwrap();
        c.run_for(SimDuration::from_secs(3));
        assert!(c.telemetry().prometheus_text().is_none());
        assert_eq!(c.last_throttle_total, 0);
    }

    #[test]
    fn trace_records_lifecycle() {
        let mut c = small_cluster();
        let job = c
            .submit_job(JobSpec::batch("b", 1, 1.0), false, constant_factory(1.0))
            .unwrap();
        c.kill_task(TaskId { job, index: 0 });
        let kinds: Vec<_> = c.trace().entries().map(|e| &e.event).collect();
        assert!(kinds
            .iter()
            .any(|e| matches!(e, TraceEvent::JobSubmitted { .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, TraceEvent::TaskPlaced { .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, TraceEvent::TaskKilled { .. })));
    }

    #[test]
    fn crash_machine_kills_and_respawns_resident_tasks() {
        let mut c = small_cluster();
        let job = c
            .submit_job(
                JobSpec::latency_sensitive("svc", 8, 1.0),
                true,
                constant_factory(1.0),
            )
            .unwrap();
        c.run_for(SimDuration::from_secs(3));
        let target = c.locate(TaskId { job, index: 0 }).unwrap();
        let resident = c.machine(target).unwrap().task_count();
        assert!(resident > 0);
        let lost = c.crash_machine(target);
        assert_eq!(lost, resident);
        // The machine rebooted empty-or-refilled, and every task of the
        // restart_on_exit job is running again somewhere.
        let placed: usize = c.machines().iter().map(|m| m.task_count()).sum();
        assert_eq!(placed, 8, "all crashed tasks must respawn");
        for i in 0..8 {
            assert!(c.locate(TaskId { job, index: i }).is_some());
        }
        assert!(c.trace().entries().any(
            |e| matches!(e.event, TraceEvent::MachineCrashed { machine, .. } if machine == target)
        ));
        // Scheduler accounting survived: the cluster can keep running.
        c.run_for(SimDuration::from_secs(3));
    }

    #[test]
    fn crash_machine_without_restart_drops_tasks() {
        let mut c = small_cluster();
        let job = c
            .submit_job(JobSpec::batch("b", 4, 1.0), false, constant_factory(1.0))
            .unwrap();
        let target = c.locate(TaskId { job, index: 0 }).unwrap();
        let resident = c.machine(target).unwrap().task_count();
        let lost = c.crash_machine(target);
        assert_eq!(lost, resident);
        let placed: usize = c.machines().iter().map(|m| m.task_count()).sum();
        assert_eq!(placed, 4 - resident);
        assert!(c.locate(TaskId { job, index: 0 }).is_none());
    }

    #[test]
    fn crash_unknown_machine_is_noop() {
        let mut c = small_cluster();
        assert_eq!(c.crash_machine(MachineId(99)), 0);
        assert!(c.trace().is_empty());
    }
}
