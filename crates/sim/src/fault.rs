//! Deterministic fault injection for the simulated CPI² deployment.
//!
//! Production reality for a fleet-wide system (§3.1, §7): agents restart,
//! machines reboot, sample shipments to the aggregation pipeline are
//! lost, delayed or duplicated, and replicas serve day-old specs. The
//! paper's design tolerates all of this implicitly — local detection
//! keeps running when the pipeline degrades — and a [`FaultPlan`] makes
//! those paths exercisable on purpose.
//!
//! Every decision is a **pure function of (seed, fault stream, machine,
//! sim time)**: queries derive a throwaway [`SimRng`] stream per event
//! instead of advancing shared state, so the same plan gives bit-identical
//! answers no matter how many worker threads the cluster runs with or in
//! what order callers ask. Periodic faults (agent restarts, machine
//! crashes) fire on a fixed per-machine phase derived from the seed, so a
//! run can be replayed tick for tick.

use crate::machine::MachineId;
use crate::time::{SimDuration, SimTime};
use cpi2_stats::rng::SimRng;

/// Per-query stream ids: independent randomness per fault class.
const STREAM_SHIPMENT: u64 = 0x5419_31D0;
const STREAM_AGENT_RESTART: u64 = 0xA6E7_4E57;
const STREAM_MACHINE_CRASH: u64 = 0xC4A5_80C7;
const STREAM_STALE_SYNC: u64 = 0x57A1_E5EC;

/// What happens to one per-machine sample shipment on the collector path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipmentFate {
    /// Delivered normally.
    Deliver,
    /// Lost in flight; never reaches the collector.
    Drop,
    /// Held back and delivered this many ticks late (out of order).
    Delay(u32),
    /// Delivered twice (a sender-side retry raced its own success).
    Duplicate,
}

/// Fault rates and periods — the taxonomy one [`FaultPlan`] injects.
///
/// Probabilities are per shipment / per sync attempt; periods are mean
/// per-machine recurrence (each machine gets its own seed-derived phase).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability a sample shipment is dropped.
    pub shipment_loss: f64,
    /// Probability a sample shipment is delayed.
    pub shipment_delay: f64,
    /// Maximum delay, in cluster ticks (uniform in `1..=max`).
    pub shipment_delay_ticks_max: u32,
    /// Probability a sample shipment is duplicated.
    pub shipment_duplicate: f64,
    /// Per-machine agent restart period (the daemon crashes and comes
    /// back empty: violation windows, histories and spec cache lost).
    pub agent_restart_period: Option<SimDuration>,
    /// Per-machine crash/reboot period (all resident tasks die and are
    /// rescheduled; counters and cgroups reset).
    pub machine_crash_period: Option<SimDuration>,
    /// Probability a spec sync is served from a stale store snapshot.
    pub stale_sync: f64,
    /// How many publishes behind a stale sync is served from.
    pub stale_lag: usize,
}

impl FaultProfile {
    /// No faults at all (every query answers "deliver" / "not due").
    pub fn none() -> Self {
        FaultProfile {
            shipment_loss: 0.0,
            shipment_delay: 0.0,
            shipment_delay_ticks_max: 0,
            shipment_duplicate: 0.0,
            agent_restart_period: None,
            machine_crash_period: None,
            stale_sync: 0.0,
            stale_lag: 0,
        }
    }

    /// The acceptance regime: 10% shipment loss, hourly agent restarts,
    /// plus light delay/duplication and occasional stale spec serving.
    pub fn lossy() -> Self {
        FaultProfile {
            shipment_loss: 0.10,
            shipment_delay: 0.05,
            shipment_delay_ticks_max: 5,
            shipment_duplicate: 0.02,
            agent_restart_period: Some(SimDuration::from_hours(1)),
            machine_crash_period: None,
            stale_sync: 0.05,
            stale_lag: 1,
        }
    }

    /// An aggressive regime for short CI runs: everything from
    /// [`FaultProfile::lossy`] at higher rates, agent restarts every
    /// 10 minutes and machine crashes every 30.
    pub fn heavy() -> Self {
        FaultProfile {
            shipment_loss: 0.10,
            shipment_delay: 0.10,
            shipment_delay_ticks_max: 10,
            shipment_duplicate: 0.05,
            agent_restart_period: Some(SimDuration::from_mins(10)),
            machine_crash_period: Some(SimDuration::from_mins(30)),
            stale_sync: 0.10,
            stale_lag: 2,
        }
    }

    /// Looks up a named profile (`none`, `lossy`, `heavy`) — the
    /// vocabulary of `fleet_rate --faults`.
    pub fn named(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(FaultProfile::none()),
            "lossy" => Some(FaultProfile::lossy()),
            "heavy" => Some(FaultProfile::heavy()),
            _ => None,
        }
    }

    /// True when no fault class is active.
    pub fn is_noop(&self) -> bool {
        self.shipment_loss <= 0.0
            && self.shipment_delay <= 0.0
            && self.shipment_duplicate <= 0.0
            && self.agent_restart_period.is_none()
            && self.machine_crash_period.is_none()
            && self.stale_sync <= 0.0
    }
}

/// A seeded, replayable schedule of faults over a simulated cluster.
///
/// The plan holds no mutable state: every query re-derives its stream
/// from `(seed, fault class, machine, time)`, so answers are independent
/// of call order and of the cluster's parallelism level.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
}

impl FaultPlan {
    /// Creates a plan from a master seed and a fault profile.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan { seed, profile }
    }

    /// The profile this plan injects.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The master seed the plan derives its streams from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stateless per-event stream: one derivation chain pins the draw to
    /// `(seed, stream, machine, time)` without any shared RNG state.
    fn event_rng(&self, stream: u64, machine: MachineId, time_us: i64) -> SimRng {
        let mut lane = SimRng::derive(self.seed ^ stream, machine.0 as u64);
        SimRng::derive(lane.next_u64(), time_us as u64)
    }

    /// Per-machine phase offset in `[0, period)` for a periodic fault.
    fn phase_us(&self, stream: u64, machine: MachineId, period_us: i64) -> i64 {
        let mut rng = SimRng::derive(self.seed ^ stream, machine.0 as u64);
        rng.below(period_us as u64) as i64
    }

    /// How many fire points of the schedule `phase + k·period` lie in
    /// `[0, t]`.
    fn crossings(phase_us: i64, period_us: i64, t_us: i64) -> i64 {
        if t_us < phase_us {
            0
        } else {
            (t_us - phase_us) / period_us + 1
        }
    }

    /// True when the periodic fault has a fire point in `(prev, now]`.
    fn periodic_due(
        &self,
        stream: u64,
        machine: MachineId,
        period: Option<SimDuration>,
        prev: SimTime,
        now: SimTime,
    ) -> bool {
        let Some(period) = period else {
            return false;
        };
        let period_us = period.as_us();
        if period_us <= 0 {
            return false;
        }
        let phase = self.phase_us(stream, machine, period_us);
        Self::crossings(phase, period_us, now.as_us())
            > Self::crossings(phase, period_us, prev.as_us())
    }

    /// Fate of the sample shipment `machine` sends at `now`.
    pub fn shipment_fate(&self, machine: MachineId, now: SimTime) -> ShipmentFate {
        let p = &self.profile;
        if p.shipment_loss <= 0.0 && p.shipment_delay <= 0.0 && p.shipment_duplicate <= 0.0 {
            return ShipmentFate::Deliver;
        }
        let mut rng = self.event_rng(STREAM_SHIPMENT, machine, now.as_us());
        let x = rng.f64();
        if x < p.shipment_loss {
            ShipmentFate::Drop
        } else if x < p.shipment_loss + p.shipment_delay {
            let ticks = 1 + rng.below(p.shipment_delay_ticks_max.max(1) as u64) as u32;
            ShipmentFate::Delay(ticks)
        } else if x < p.shipment_loss + p.shipment_delay + p.shipment_duplicate {
            ShipmentFate::Duplicate
        } else {
            ShipmentFate::Deliver
        }
    }

    /// True when `machine`'s management agent restarts in `(prev, now]`.
    pub fn agent_restart_due(&self, machine: MachineId, prev: SimTime, now: SimTime) -> bool {
        self.periodic_due(
            STREAM_AGENT_RESTART,
            machine,
            self.profile.agent_restart_period,
            prev,
            now,
        )
    }

    /// True when `machine` crashes and reboots in `(prev, now]`.
    pub fn machine_crash_due(&self, machine: MachineId, prev: SimTime, now: SimTime) -> bool {
        self.periodic_due(
            STREAM_MACHINE_CRASH,
            machine,
            self.profile.machine_crash_period,
            prev,
            now,
        )
    }

    /// True when `machine`'s spec sync at `now` is served a stale
    /// (lagged) store snapshot instead of the current one.
    pub fn stale_sync(&self, machine: MachineId, now: SimTime) -> bool {
        if self.profile.stale_sync <= 0.0 {
            return false;
        }
        let mut rng = self.event_rng(STREAM_STALE_SYNC, machine, now.as_us());
        rng.f64() < self.profile.stale_sync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u32) -> MachineId {
        MachineId(id)
    }

    #[test]
    fn named_profiles_resolve() {
        assert!(FaultProfile::named("none").unwrap().is_noop());
        let lossy = FaultProfile::named("lossy").unwrap();
        assert_eq!(lossy.shipment_loss, 0.10);
        assert_eq!(lossy.agent_restart_period, Some(SimDuration::from_hours(1)));
        assert!(FaultProfile::named("heavy").is_some());
        assert!(FaultProfile::named("apocalypse").is_none());
    }

    #[test]
    fn noop_profile_never_faults() {
        let plan = FaultPlan::new(42, FaultProfile::none());
        for t in 0..1000 {
            let now = SimTime::from_secs(t);
            assert_eq!(plan.shipment_fate(m(3), now), ShipmentFate::Deliver);
            assert!(!plan.agent_restart_due(m(3), SimTime::from_secs(t.max(1) - 1), now));
            assert!(!plan.machine_crash_due(m(3), SimTime::from_secs(t.max(1) - 1), now));
            assert!(!plan.stale_sync(m(3), now));
        }
    }

    #[test]
    fn queries_are_pure_and_replayable() {
        let a = FaultPlan::new(0xFA17, FaultProfile::heavy());
        let b = FaultPlan::new(0xFA17, FaultProfile::heavy());
        for t in (0..7200).step_by(60) {
            let now = SimTime::from_secs(t);
            // Same plan, same query, any call order: identical answers.
            assert_eq!(a.shipment_fate(m(7), now), b.shipment_fate(m(7), now));
            assert_eq!(a.stale_sync(m(7), now), b.stale_sync(m(7), now));
            assert_eq!(a.shipment_fate(m(7), now), a.shipment_fate(m(7), now));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(1, FaultProfile::heavy());
        let b = FaultPlan::new(2, FaultProfile::heavy());
        let fates_a: Vec<_> = (0..600)
            .map(|t| a.shipment_fate(m(0), SimTime::from_secs(t)))
            .collect();
        let fates_b: Vec<_> = (0..600)
            .map(|t| b.shipment_fate(m(0), SimTime::from_secs(t)))
            .collect();
        assert_ne!(fates_a, fates_b, "seeds must decorrelate fault streams");
    }

    #[test]
    fn shipment_loss_rate_is_approximately_honored() {
        let plan = FaultPlan::new(9, FaultProfile::lossy());
        let n = 20_000;
        let dropped = (0..n)
            .filter(|&t| plan.shipment_fate(m(1), SimTime::from_secs(t)) == ShipmentFate::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!(
            (0.08..=0.12).contains(&rate),
            "drop rate {rate} far from 10%"
        );
    }

    #[test]
    fn periodic_restarts_fire_once_per_period() {
        let plan = FaultPlan::new(5, FaultProfile::lossy()); // hourly restarts
        let tick = SimDuration::from_secs(1);
        let mut fired = 0;
        let mut prev = SimTime::ZERO;
        // Walk 6 hours tick by tick: exactly 6 restarts per machine.
        for t in 1..=(6 * 3600) {
            let now = SimTime::from_secs(t);
            if plan.agent_restart_due(m(2), prev, now) {
                fired += 1;
            }
            prev = now;
        }
        assert_eq!(fired, 6, "hourly restart must fire once per hour");
        let _ = tick;
    }

    #[test]
    fn periodic_due_is_step_size_invariant() {
        // Walking the same window in 1 s or 60 s steps sees the same
        // number of fire points (they land in exactly one step's window).
        let plan = FaultPlan::new(11, FaultProfile::heavy());
        let count = |step: i64| {
            let mut fired = 0;
            let mut prev = SimTime::ZERO;
            let mut t = step;
            while t <= 4 * 3600 {
                let now = SimTime::from_secs(t);
                if plan.machine_crash_due(m(4), prev, now) {
                    fired += 1;
                }
                prev = now;
                t += step;
            }
            fired
        };
        assert_eq!(count(1), count(60));
    }

    #[test]
    fn delay_ticks_in_declared_range() {
        let plan = FaultPlan::new(3, FaultProfile::heavy());
        let max = FaultProfile::heavy().shipment_delay_ticks_max;
        for t in 0..50_000 {
            if let ShipmentFate::Delay(k) = plan.shipment_fate(m(0), SimTime::from_secs(t)) {
                assert!((1..=max).contains(&k), "delay {k} outside 1..={max}");
            }
        }
    }
}
