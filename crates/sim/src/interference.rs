//! The shared-resource interference model.
//!
//! This is the *physical phenomenon* CPI² detects: co-running tasks compete
//! for last-level cache capacity and memory bandwidth, inflating each
//! other's CPI (§1). The model has two coupled parts:
//!
//! 1. **Cache occupancy.** Each active task claims L3 proportionally to its
//!    working set and activity. When total demand exceeds capacity every
//!    task retains only `L3 / demand` of its hot set, and its L3
//!    misses-per-kilo-instruction (MPKI) inflate by its *cache
//!    sensitivity*.
//! 2. **Memory-bandwidth queueing.** The resulting aggregate miss traffic
//!    loads the memory controllers; utilization ρ inflates the effective
//!    miss penalty by an M/M/1-style factor `1 + β·ρ/(1−ρ)`.
//!
//! CPI and miss traffic are mutually dependent (more stall cycles → fewer
//! instructions → less traffic), so the model runs a short fixed-point
//! iteration. Everything here is deterministic; per-tick noise is applied
//! by the machine.

use crate::platform::Platform;
use crate::task::ResourceProfile;

/// Per-task input to the interference model for one tick.
#[derive(Debug, Clone, Copy)]
pub struct TaskLoad {
    /// CPU actively consumed this tick, in cores.
    pub activity: f64,
    /// Microarchitectural profile.
    pub profile: ResourceProfile,
}

/// Per-task output of the interference model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskInterference {
    /// Effective cycles per instruction (before noise).
    pub cpi: f64,
    /// Effective L3 misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of the task's hot working set still resident (0–1].
    pub cache_retained: f64,
}

/// Machine-level summary of the contention state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionSummary {
    /// Aggregate hot-set demand on the L3, in MB.
    pub cache_demand_mb: f64,
    /// Memory-bandwidth utilization ρ in `[0, 1)`.
    pub mem_utilization: f64,
}

/// Tuning constants of the interference model.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceParams {
    /// MPKI inflation per unit cache loss per unit sensitivity.
    pub cache_slope: f64,
    /// Queueing-delay weight β on the miss penalty.
    pub queue_beta: f64,
    /// Utilization clamp to keep the queueing factor finite.
    pub rho_max: f64,
    /// Fixed-point iterations.
    pub iterations: u32,
    /// Damping factor on the CPI update in `(0, 1]`: 1 = undamped. Damping
    /// keeps the bandwidth fixed point stable for extreme memory hogs,
    /// whose instruction rate and miss traffic otherwise oscillate.
    pub damping: f64,
}

impl Default for InterferenceParams {
    fn default() -> Self {
        InterferenceParams {
            cache_slope: 4.0,
            queue_beta: 0.35,
            rho_max: 0.95,
            iterations: 6,
            damping: 0.5,
        }
    }
}

/// Struct-of-arrays view of the per-task [`ResourceProfile`] fields the
/// interference model reads: one contiguous column per field, indexed in
/// task order. The fixed point streams these columns instead of hopping
/// across an array of profile structs, and callers (the machine tick)
/// fill them once per tick without materializing `TaskLoad`s.
#[derive(Debug, Default)]
pub struct ProfileColumns {
    /// Hot working-set size per task, MB.
    pub cache_mb: Vec<f64>,
    /// MPKI inflation sensitivity to cache loss per task.
    pub cache_sensitivity: Vec<f64>,
    /// Solo L3 misses per kilo-instruction per task.
    pub mpki_solo: Vec<f64>,
    /// Uncontended CPI per task.
    pub base_cpi: Vec<f64>,
}

impl ProfileColumns {
    /// Clears every column (capacity retained).
    pub fn clear(&mut self) {
        self.cache_mb.clear();
        self.cache_sensitivity.clear();
        self.mpki_solo.clear();
        self.base_cpi.clear();
    }

    /// Appends one task's profile to every column.
    pub fn push(&mut self, p: &ResourceProfile) {
        self.cache_mb.push(p.cache_mb);
        self.cache_sensitivity.push(p.cache_sensitivity);
        self.mpki_solo.push(p.mpki_solo);
        self.base_cpi.push(p.base_cpi);
    }

    /// Number of tasks in the columns.
    pub fn len(&self) -> usize {
        self.base_cpi.len()
    }

    /// Whether the columns are empty.
    pub fn is_empty(&self) -> bool {
        self.base_cpi.is_empty()
    }
}

/// Reusable intermediate buffers for [`compute_into`], so the per-tick
/// fixed point runs without allocating. One instance per machine lives in
/// its tick scratch and is reused across ticks.
#[derive(Debug, Default)]
pub struct ComputeScratch {
    /// Profile fields split into columns.
    cols: ProfileColumns,
    /// Per-task activity column.
    activity: Vec<f64>,
    /// Per-task effective MPKI after cache loss.
    mpki: Vec<f64>,
    /// Per-task CPI estimate, refined by the bandwidth fixed point.
    cpi: Vec<f64>,
}

/// Computes per-task CPI and miss rates for one tick.
///
/// Returns one [`TaskInterference`] per input (same order) plus a machine
/// summary. Tasks with zero activity get their solo numbers.
///
/// Allocating convenience wrapper around [`compute_into`]; hot paths hold
/// a [`ComputeScratch`] and call `compute_into` directly.
pub fn compute(
    platform: &Platform,
    loads: &[TaskLoad],
    params: &InterferenceParams,
) -> (Vec<TaskInterference>, ContentionSummary) {
    let mut out = Vec::with_capacity(loads.len());
    let mut scratch = ComputeScratch::default();
    let summary = compute_into(platform, loads, params, &mut out, &mut scratch);
    (out, summary)
}

/// [`compute`], but writing into caller-owned buffers: `out` is cleared
/// and filled with one [`TaskInterference`] per input (same order), and
/// `scratch` provides the fixed point's intermediate storage. In steady
/// state (capacities warmed up) this performs no heap allocation.
///
/// Bit-identical to [`compute`] for every input: the arithmetic and its
/// evaluation order are unchanged, only the storage is caller-owned
/// (property-tested against a pinned reference implementation). This is
/// now a thin array-of-structs adapter over [`compute_cols`]: it splits
/// the loads into columns, runs the columnar kernel, and reassembles
/// per-task structs.
// lint: hot-path
pub fn compute_into(
    platform: &Platform,
    loads: &[TaskLoad],
    params: &InterferenceParams,
    out: &mut Vec<TaskInterference>,
    scratch: &mut ComputeScratch,
) -> ContentionSummary {
    out.clear();
    let ComputeScratch {
        cols,
        activity,
        mpki,
        cpi,
    } = scratch;
    cols.clear();
    activity.clear();
    for l in loads {
        activity.push(l.activity);
        cols.push(&l.profile);
    }
    let (summary, retained) = compute_cols(platform, activity, cols, params, cpi, mpki);
    for (&c, &m) in cpi.iter().zip(mpki.iter()) {
        out.push(TaskInterference {
            cpi: c,
            mpki: m,
            cache_retained: retained,
        });
    }
    summary
}

/// The columnar interference kernel: per-task CPI and MPKI for one tick,
/// streamed over struct-of-arrays inputs. `activity` and `profiles` are
/// parallel columns in task order; `cpi` and `mpki` are cleared and
/// refilled with one output per task (same order). Returns the machine
/// summary plus the global cache-retention fraction shared by every task
/// this tick (1.0 when demand fits in the L3).
///
/// The arithmetic and its evaluation order are exactly the historical
/// per-struct implementation's — column iteration visits tasks in the
/// same order the struct loop did, so results are bit-identical (pinned
/// by the golden-digest determinism suite and the reference property
/// test).
// lint: hot-path
pub fn compute_cols(
    platform: &Platform,
    activity: &[f64],
    profiles: &ProfileColumns,
    params: &InterferenceParams,
    cpi: &mut Vec<f64>,
    mpki: &mut Vec<f64>,
) -> (ContentionSummary, f64) {
    mpki.clear();
    cpi.clear();

    // --- Cache occupancy -------------------------------------------------
    // Hot-set demand saturates with activity: idle tasks hold nothing, a
    // task at 1 core keeps ~63 % of its set hot, heavily threaded tasks
    // approach their full footprint. Accumulated in input order, exactly
    // as summing a per-task vector would.
    let mut demand = 0.0f64;
    let mut total_activity = 0.0f64;
    for (&cache_mb, &a) in profiles.cache_mb.iter().zip(activity.iter()) {
        demand += cache_mb * (1.0 - (-a).exp());
        total_activity += a;
    }

    // Fast path: a machine with zero total activity perturbs nothing.
    // Proof of bit-identity with the general path: every activity is 0
    // (grants are non-negative), so each hot-set term is cache_mb·(1−e⁰)
    // = 0 and demand = 0 ⇒ retained = 1 ⇒ loss = 0 ⇒ mpki = mpki_solo
    // exactly; the miss traffic is 0 ⇒ ρ = 0 ⇒ queue_mult = 1 ⇒
    // extra = 0 ⇒ every fixed-point target equals the initial CPI, and
    // the damped update `c += damping·(target − c)` adds exactly 0.0.
    if total_activity == 0.0 {
        for (&base, &solo) in profiles.base_cpi.iter().zip(profiles.mpki_solo.iter()) {
            cpi.push(base * platform.cpi_factor);
            mpki.push(solo);
        }
        return (
            ContentionSummary {
                cache_demand_mb: demand,
                mem_utilization: 0.0,
            },
            1.0,
        );
    }

    let retained_global = if demand <= platform.l3_mb || demand == 0.0 {
        1.0
    } else {
        platform.l3_mb / demand
    };

    // MPKI after cache loss (independent of the bandwidth fixed point).
    for (&solo, &sensitivity) in profiles
        .mpki_solo
        .iter()
        .zip(profiles.cache_sensitivity.iter())
    {
        let loss = 1.0 - retained_global;
        mpki.push(solo * (1.0 + sensitivity * loss * params.cache_slope));
    }

    // --- Bandwidth fixed point -------------------------------------------
    for &base in &profiles.base_cpi {
        cpi.push(base * platform.cpi_factor);
    }
    let mut rho = 0.0;
    for _ in 0..params.iterations {
        // Miss traffic in giga-lines/sec at current CPI estimates.
        let glines: f64 = activity
            .iter()
            .zip(cpi.iter())
            .zip(mpki.iter())
            .map(|((&a, &c), &m)| {
                let instr_per_sec = a * platform.clock_hz / c;
                instr_per_sec * m / 1000.0 / 1e9
            })
            .sum();
        rho = (glines / platform.mem_bw_glines).min(params.rho_max);
        let queue_mult = 1.0 + params.queue_beta * rho / (1.0 - rho);
        let eff_penalty = platform.miss_penalty_cycles * queue_mult;
        let rows = profiles
            .mpki_solo
            .iter()
            .zip(profiles.base_cpi.iter())
            .zip(cpi.iter_mut().zip(mpki.iter()));
        for ((&solo, &base), (c, &m)) in rows {
            // base_cpi already prices solo misses at nominal latency; add
            // only the extra stall cycles from lost cache and queueing.
            let extra_mpki = (m - solo).max(0.0);
            let extra = (extra_mpki * eff_penalty
                + solo * platform.miss_penalty_cycles * (queue_mult - 1.0))
                / 1000.0;
            let target = base * platform.cpi_factor + extra;
            // Damped update for fixed-point stability.
            *c += params.damping * (target - *c);
        }
    }

    (
        ContentionSummary {
            cache_demand_mb: demand,
            mem_utilization: rho,
        },
        retained_global,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solo(profile: ResourceProfile, activity: f64) -> TaskInterference {
        let p = Platform::westmere();
        let (v, _) = compute(
            &p,
            &[TaskLoad { activity, profile }],
            &InterferenceParams::default(),
        );
        v[0]
    }

    #[test]
    fn solo_task_sees_base_cpi() {
        let t = solo(ResourceProfile::compute_bound(), 1.0);
        assert!((t.cpi - 0.9).abs() < 0.02, "cpi={}", t.cpi);
        assert_eq!(t.cache_retained, 1.0);
        assert!((t.mpki - 0.3).abs() < 1e-9);
    }

    #[test]
    fn idle_task_unperturbed() {
        let t = solo(ResourceProfile::cache_heavy(), 0.0);
        assert!((t.mpki - 2.0).abs() < 1e-9);
    }

    #[test]
    fn antagonist_inflates_victim_cpi() {
        let p = Platform::westmere();
        let victim = TaskLoad {
            activity: 2.0,
            profile: ResourceProfile::cache_heavy(),
        };
        let antagonist = TaskLoad {
            activity: 6.0,
            profile: ResourceProfile::streaming(),
        };
        let params = InterferenceParams::default();
        let (alone, _) = compute(&p, &[victim], &params);
        let (together, summary) = compute(&p, &[victim, antagonist], &params);
        assert!(
            together[0].cpi > alone[0].cpi * 1.3,
            "alone={} together={}",
            alone[0].cpi,
            together[0].cpi
        );
        assert!(together[0].mpki > alone[0].mpki);
        assert!(summary.cache_demand_mb > p.l3_mb);
        assert!(summary.mem_utilization > 0.1);
    }

    #[test]
    fn interference_scales_with_antagonist_activity() {
        // More antagonist CPU ⇒ more victim CPI: the monotonicity that the
        // §4.2 correlation score relies on.
        let p = Platform::westmere();
        let params = InterferenceParams::default();
        let victim = TaskLoad {
            activity: 2.0,
            profile: ResourceProfile::cache_heavy(),
        };
        let mut last = 0.0;
        for a in [0.0, 1.0, 2.0, 4.0, 8.0] {
            let antagonist = TaskLoad {
                activity: a,
                profile: ResourceProfile::streaming(),
            };
            let (v, _) = compute(&p, &[victim, antagonist], &params);
            assert!(
                v[0].cpi >= last - 1e-9,
                "activity={a}: cpi={} < last={last}",
                v[0].cpi
            );
            last = v[0].cpi;
        }
        assert!(last > 1.5, "max victim cpi={last}");
    }

    #[test]
    fn insensitive_task_barely_affected_by_cache_loss() {
        let p = Platform::westmere();
        let params = InterferenceParams::default();
        let mut insensitive = ResourceProfile::compute_bound();
        insensitive.cache_sensitivity = 0.0;
        insensitive.mpki_solo = 0.1;
        let victim = TaskLoad {
            activity: 1.0,
            profile: insensitive,
        };
        let antagonist = TaskLoad {
            activity: 8.0,
            profile: ResourceProfile::streaming(),
        };
        let (v, _) = compute(&p, &[victim, antagonist], &params);
        let base = insensitive.base_cpi * p.cpi_factor;
        assert!(v[0].cpi < base * 1.15, "cpi={} base={base}", v[0].cpi);
    }

    #[test]
    fn bigger_cache_platform_suffers_less() {
        let params = InterferenceParams::default();
        let tasks = [
            TaskLoad {
                activity: 2.0,
                profile: ResourceProfile::cache_heavy(),
            },
            TaskLoad {
                activity: 4.0,
                profile: ResourceProfile::streaming(),
            },
        ];
        let (w, _) = compute(&Platform::westmere(), &tasks, &params);
        let (s, _) = compute(&Platform::sandy_bridge(), &tasks, &params);
        // Normalize out the per-platform base factor before comparing.
        let w_rel = w[0].cpi / (tasks[0].profile.base_cpi * Platform::westmere().cpi_factor);
        let s_rel = s[0].cpi / (tasks[0].profile.base_cpi * Platform::sandy_bridge().cpi_factor);
        assert!(s_rel < w_rel, "sandy={s_rel} westmere={w_rel}");
    }

    #[test]
    fn utilization_clamped() {
        let p = Platform::westmere();
        let params = InterferenceParams::default();
        let hogs: Vec<TaskLoad> = (0..20)
            .map(|_| TaskLoad {
                activity: 4.0,
                profile: ResourceProfile::streaming(),
            })
            .collect();
        let (v, summary) = compute(&p, &hogs, &params);
        assert!(summary.mem_utilization <= params.rho_max + 1e-12);
        assert!(v.iter().all(|t| t.cpi.is_finite() && t.cpi > 0.0));
    }

    #[test]
    fn empty_input_ok() {
        let (v, s) = compute(&Platform::westmere(), &[], &InterferenceParams::default());
        assert!(v.is_empty());
        assert_eq!(s.cache_demand_mb, 0.0);
    }
}
