//! Jobs, priorities and scheduling classes.
//!
//! In the paper's cluster-management system "both latency-sensitive and
//! batch jobs are comprised of multiple tasks" (§2); jobs are classified
//! into production / non-production priority bands and CPI² gives
//! preference to latency-sensitive jobs over batch ones when choosing whom
//! to throttle (§5).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique job identifier within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Unique task identifier: a job plus a task index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId {
    /// Owning job.
    pub job: JobId,
    /// Index of this task within the job.
    pub index: u32,
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.job, self.index)
    }
}

/// Priority band of a job (§2: "production" and "non-production").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Production priority: user-facing, provisioned for peak.
    Production,
    /// Non-production: experiments, batch analytics, best-effort work.
    NonProduction,
}

/// Scheduling class, which drives CPI² throttling eligibility (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedClass {
    /// Latency-sensitive serving job: protected, never auto-throttled.
    LatencySensitive,
    /// Ordinary batch job: cappable to 0.1 CPU-sec/sec.
    Batch,
    /// Low-importance ("best effort") batch: cappable to 0.01 CPU-sec/sec.
    BestEffort,
}

impl SchedClass {
    /// Whether CPI² may hard-cap tasks of this class (§5: batch only).
    pub fn throttle_eligible(self) -> bool {
        !matches!(self, SchedClass::LatencySensitive)
    }
}

/// Static description of a job submitted to the cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable job name (the `jobname` field of CPI records).
    pub name: String,
    /// Priority band.
    pub priority: Priority,
    /// Scheduling class.
    pub class: SchedClass,
    /// Number of tasks the job wants running.
    pub task_count: u32,
    /// Per-task CPU reservation in CPU-sec/sec (cores).
    pub cpu_reservation: f64,
}

impl JobSpec {
    /// Convenience constructor for a latency-sensitive production job.
    pub fn latency_sensitive(name: impl Into<String>, task_count: u32, cpu: f64) -> Self {
        JobSpec {
            name: name.into(),
            priority: Priority::Production,
            class: SchedClass::LatencySensitive,
            task_count,
            cpu_reservation: cpu,
        }
    }

    /// Convenience constructor for a non-production batch job.
    pub fn batch(name: impl Into<String>, task_count: u32, cpu: f64) -> Self {
        JobSpec {
            name: name.into(),
            priority: Priority::NonProduction,
            class: SchedClass::Batch,
            task_count,
            cpu_reservation: cpu,
        }
    }

    /// Convenience constructor for a best-effort batch job.
    pub fn best_effort(name: impl Into<String>, task_count: u32, cpu: f64) -> Self {
        JobSpec {
            name: name.into(),
            priority: Priority::NonProduction,
            class: SchedClass::BestEffort,
            task_count,
            cpu_reservation: cpu,
        }
    }

    /// Whether this job is in the protected set CPI² defends (§5).
    pub fn protected(&self) -> bool {
        self.class == SchedClass::LatencySensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        let t = TaskId {
            job: JobId(3),
            index: 17,
        };
        assert_eq!(t.to_string(), "job3/17");
    }

    #[test]
    fn throttle_eligibility() {
        assert!(!SchedClass::LatencySensitive.throttle_eligible());
        assert!(SchedClass::Batch.throttle_eligible());
        assert!(SchedClass::BestEffort.throttle_eligible());
    }

    #[test]
    fn constructors_set_classes() {
        let ls = JobSpec::latency_sensitive("websearch", 100, 2.0);
        assert_eq!(ls.class, SchedClass::LatencySensitive);
        assert_eq!(ls.priority, Priority::Production);
        assert!(ls.protected());

        let b = JobSpec::batch("mapreduce", 50, 1.0);
        assert_eq!(b.class, SchedClass::Batch);
        assert!(!b.protected());

        let be = JobSpec::best_effort("replayer", 10, 0.5);
        assert_eq!(be.class, SchedClass::BestEffort);
        assert_eq!(be.priority, Priority::NonProduction);
    }
}
