//! Shared-compute-cluster simulator: the substrate of the CPI² reproduction.
//!
//! This crate reproduces the environment the paper deployed into: machines
//! shared by latency-sensitive and batch tasks (§2), a central scheduler
//! with admission control and batch overcommit, per-task cgroups with CFS
//! bandwidth control (the hard-capping mechanism of §5), and — crucially —
//! the shared-resource interference that CPI² exists to detect: an
//! L3-cache-occupancy + memory-bandwidth contention model that inflates
//! co-runners' CPI ([`interference`]).
//!
//! Layering:
//!
//! * [`time`], [`platform`] — simulated clock and CPU types.
//! * [`cgroup`] — containers, hardware counters, CFS bandwidth control.
//! * [`job`], [`task`] — job/task identity, priorities, behaviour models.
//! * [`interference`] — the contention model.
//! * [`machine`] — per-tick CPU allocation and counter accounting.
//! * [`scheduler`], [`cluster`] — placement, admission control, lifecycle.
//! * [`trace`] — ground-truth event log for the evaluation harness.

#![warn(missing_docs)]

pub mod cgroup;
pub mod cluster;
pub mod fault;
pub mod interference;
pub mod job;
pub mod machine;
pub mod platform;
mod pool;
pub mod schedule;
pub mod scheduler;
pub mod task;
pub mod time;
pub mod trace;

pub use cgroup::{Cgroup, CounterBlock, HardCap};
pub use cluster::{default_parallelism, Cluster, ClusterConfig, ModelFactory};
pub use fault::{FaultPlan, FaultProfile, ShipmentFate};
pub use interference::{InterferenceParams, ProfileColumns, TaskLoad};
pub use job::{JobId, JobSpec, Priority, SchedClass, TaskId};
pub use machine::{Machine, MachineId, ResidentTask, TaskExit, TaskView};
pub use platform::Platform;
pub use schedule::{ClusterEvent, EventQueue};
pub use scheduler::{PlacementError, PlacementPolicy, Scheduler};
pub use task::{
    ConstantLoad, ResourceProfile, TaskAction, TaskDemand, TaskInstance, TaskModel, TickOutcome,
};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry, TraceEvent};
