//! A shared machine: CPU allocation, interference, and counter accounting.
//!
//! Each simulated machine runs many tasks from different jobs (Fig. 1 shows
//! the production distribution this reproduces). Every tick the machine
//! gathers task demands, applies cgroup bandwidth control, allocates CPUs
//! with latency-sensitive preference, runs the interference model, and
//! charges hardware counters to each task's cgroup.

use crate::cgroup::{Cgroup, CounterBlock};
use crate::interference::{self, InterferenceParams, ProfileColumns};
use crate::job::{Priority, SchedClass, TaskId};
use crate::platform::Platform;
use crate::task::{TaskAction, TaskInstance, TaskModel, TickOutcome};
use crate::time::{SimDuration, SimTime};
use cpi2_stats::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique machine identifier within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Context-switch rate per runnable thread per second, used to model the
/// counter save/restore overhead of §3.1.
const CTX_SWITCHES_PER_THREAD_SEC: f64 = 20.0;

/// One task resident on a machine.
///
/// Per-tick scheduler state that the hot loop reads and writes every tick
/// (runnable threads, starvation streak) lives in the machine's
/// [`TaskColumns`], not here — [`Machine::tasks`] hands out [`TaskView`]s
/// that rejoin the two.
pub struct ResidentTask {
    /// Task identity.
    pub id: TaskId,
    /// Owning job's name (the `jobname` of CPI sample records).
    pub job_name: String,
    /// Scheduling class (drives throttle eligibility).
    pub class: SchedClass,
    /// Priority band.
    pub priority: Priority,
    /// The task's resource container.
    pub cgroup: Cgroup,
    model: Box<dyn TaskModel>,
    last_outcome: Option<TickOutcome>,
}

impl ResidentTask {
    /// Outcome of the most recent tick, if the task has run.
    pub fn last_outcome(&self) -> Option<&TickOutcome> {
        self.last_outcome.as_ref()
    }

    /// Immutable access to the behaviour model (for workload metrics).
    pub fn model(&self) -> &dyn TaskModel {
        self.model.as_ref()
    }
}

/// Struct-of-arrays columns of per-task scheduler state, index-parallel to
/// `Machine::tasks`. The tick loop streams these contiguously instead of
/// chasing them through per-task structs; membership changes (add, remove,
/// exit, crash) compact them in lockstep with the task vector.
#[derive(Debug, Default)]
struct TaskColumns {
    /// Runnable thread count per task (as of the last tick's demand).
    threads: Vec<u32>,
    /// Consecutive ticks each task wanted CPU but machine pressure (not a
    /// cap) starved it — the scheduler's batch-preemption signal (§2).
    starved: Vec<u32>,
}

impl TaskColumns {
    fn push_new(&mut self) {
        self.threads.push(0);
        self.starved.push(0);
    }

    fn remove(&mut self, index: usize) {
        self.threads.remove(index);
        self.starved.remove(index);
    }
}

/// A resident task joined with its scheduler-state columns: everything the
/// array-of-structs `ResidentTask` used to expose, from the columnar
/// layout. Dereferences to the task itself, so field access and the
/// struct's own methods work unchanged.
#[derive(Clone, Copy, Debug)]
pub struct TaskView<'a> {
    task: &'a ResidentTask,
    threads: u32,
    starved: u32,
}

impl<'a> std::ops::Deref for TaskView<'a> {
    type Target = ResidentTask;

    fn deref(&self) -> &ResidentTask {
        self.task
    }
}

impl<'a> TaskView<'a> {
    /// The underlying resident task.
    pub fn task(&self) -> &'a ResidentTask {
        self.task
    }

    /// Current runnable thread count (as of the last tick's demand).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Consecutive ticks the task has been starved by machine pressure
    /// (excluding bandwidth-control caps).
    pub fn starved_ticks(&self) -> u32 {
        self.starved
    }
}

impl fmt::Debug for ResidentTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResidentTask")
            .field("id", &self.id)
            .field("job", &self.job_name)
            .field("class", &self.class)
            .finish()
    }
}

/// Record of a task that exited during a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskExit {
    /// Which task exited.
    pub id: TaskId,
    /// When it exited.
    pub at: SimTime,
    /// Whether it was being hard-capped at the time (the §6.2 MapReduce
    /// worker case).
    pub capped: bool,
}

/// Reusable per-machine buffers for [`Machine::tick`], laid out as
/// struct-of-arrays: one contiguous column per per-task quantity, all
/// index-parallel to `Machine::tasks`. All vectors are cleared (not
/// shrunk) at the top of each tick, so once warmed up to the machine's
/// task count the steady-state tick performs no heap allocation. The
/// scratch travels with the machine when the worker pool moves it between
/// threads, so warm capacity is never lost to resharding.
#[derive(Debug, Default)]
struct TickScratch {
    /// Post-bandwidth-control CPU demand per task.
    wants: Vec<f64>,
    /// Whether bandwidth control clamped the task this tick.
    capped: Vec<bool>,
    /// CPU actually granted per task.
    granted: Vec<f64>,
    /// CPI noise sigma per task (0 = noiseless).
    noise: Vec<f64>,
    /// Whether the task's model chose to exit this tick.
    exited: Vec<bool>,
    /// Interference-model profile inputs, split into columns.
    profiles: ProfileColumns,
    /// Interference-model CPI output column.
    cpi: Vec<f64>,
    /// Interference-model MPKI output column.
    mpki: Vec<f64>,
}

/// Front-to-back lockstep retain: keeps element `i` of `v` exactly when
/// `keep[i]` is true, preserving order. Used to compact the task vector
/// and every parallel column with one shared flag column. Extra elements
/// beyond `keep.len()` are retained (never happens for in-sync columns).
fn retain_by_flags<T>(v: &mut Vec<T>, keep: &[bool]) {
    let mut flags = keep.iter();
    v.retain(|_| *flags.next().unwrap_or(&true));
}

/// A machine hosting tasks from many jobs.
pub struct Machine {
    /// Machine identity.
    pub id: MachineId,
    /// Hardware platform.
    pub platform: Platform,
    tasks: Vec<ResidentTask>,
    /// Per-task scheduler state, index-parallel to `tasks`.
    cols: TaskColumns,
    params: InterferenceParams,
    rng: SimRng,
    last_utilization: f64,
    /// Cumulative count of task-ticks where the CFS bandwidth model
    /// clamped a task below its demand (cluster telemetry reads deltas).
    throttle_events: u64,
    /// Tick-loop buffers, reused across ticks.
    scratch: TickScratch,
}

impl Machine {
    /// Creates an empty machine.
    pub fn new(id: MachineId, platform: Platform, seed: u64) -> Self {
        Machine {
            id,
            platform,
            tasks: Vec::new(),
            cols: TaskColumns::default(),
            params: InterferenceParams::default(),
            rng: SimRng::derive(seed, id.0 as u64),
            last_utilization: 0.0,
            throttle_events: 0,
            scratch: TickScratch::default(),
        }
    }

    /// Cumulative CFS-bandwidth throttle events on this machine: task-ticks
    /// where the cgroup clamped CPU below what the task wanted.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// Overrides the interference model parameters (for ablations).
    pub fn set_interference_params(&mut self, params: InterferenceParams) {
        self.params = params;
    }

    /// Places a task on this machine.
    ///
    /// `job_name`, `class` and `priority` come from the job spec;
    /// `cpu_limit` is the cgroup's long-term limit, if any.
    pub fn add_task(
        &mut self,
        instance: TaskInstance,
        job_name: impl Into<String>,
        class: SchedClass,
        priority: Priority,
        cpu_limit: Option<f64>,
    ) {
        self.tasks.push(ResidentTask {
            id: instance.id,
            job_name: job_name.into(),
            class,
            priority,
            cgroup: Cgroup::new(cpu_limit),
            model: instance.model,
            last_outcome: None,
        });
        self.cols.push_new();
    }

    /// Removes a task (kill / migrate away). Returns `true` if it was here.
    pub fn remove_task(&mut self, id: TaskId) -> bool {
        match self.tasks.iter().position(|t| t.id == id) {
            Some(index) => {
                self.tasks.remove(index);
                self.cols.remove(index);
                true
            }
            None => false,
        }
    }

    /// Number of resident tasks (Fig. 1a statistic).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total runnable threads across tasks (Fig. 1b statistic).
    pub fn thread_count(&self) -> u64 {
        self.cols.threads.iter().map(|&t| t as u64).sum()
    }

    /// Iterates resident tasks joined with their scheduler-state columns.
    pub fn tasks(&self) -> impl Iterator<Item = TaskView<'_>> {
        self.tasks
            .iter()
            .zip(self.cols.threads.iter().zip(self.cols.starved.iter()))
            .map(|(task, (&threads, &starved))| TaskView {
                task,
                threads,
                starved,
            })
    }

    /// Looks up a resident task.
    pub fn task(&self, id: TaskId) -> Option<TaskView<'_>> {
        self.tasks().find(|t| t.id == id)
    }

    /// Mutable lookup (used by agents to apply hard caps).
    pub fn task_mut(&mut self, id: TaskId) -> Option<&mut ResidentTask> {
        self.tasks.iter_mut().find(|t| t.id == id)
    }

    /// CPU utilization over the last tick, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.last_utilization
    }

    /// Sum of the long-term cgroup CPU limits for tasks of `class`, used by
    /// the scheduler's admission control.
    ///
    /// This deliberately ignores temporary hard caps: a capped antagonist
    /// still reserves its full limit, because the cap expires long before
    /// the placement does. (It previously queried
    /// `effective_rate(SimTime::ZERO)`, which let a hard cap that happened
    /// to span t=0 shrink the reservation admission control saw.)
    pub fn reserved_cpu(&self, class: SchedClass) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.class == class)
            .filter_map(|t| t.cgroup.limit())
            .sum()
    }

    /// Advances the machine by one tick of length `dt` ending the tick's
    /// accounting at `now + dt`. Tasks that exited during the tick are
    /// *appended* to `exits` (the buffer is not cleared, so callers can
    /// pool one buffer across many machines and ticks).
    ///
    /// Steady state performs no heap allocation: all intermediates live in
    /// the machine's [`TickScratch`].
    // lint: hot-path
    pub fn tick(&mut self, now: SimTime, dt: SimDuration, exits: &mut Vec<TaskExit>) {
        // Fast path: an empty machine schedules nothing, charges nothing,
        // and draws no RNG values, so skipping the body is bit-identical
        // to running it (every loop below is over zero tasks and the only
        // observable writes are utilization = 0 and no exits).
        if self.tasks.is_empty() {
            self.last_utilization = 0.0;
            return;
        }

        let dt_sec = dt.as_secs_f64();
        let cores = self.platform.cores as f64;
        let Machine {
            platform,
            tasks,
            cols,
            params,
            rng,
            last_utilization,
            throttle_events,
            scratch,
            ..
        } = self;
        let TickScratch {
            wants,
            capped,
            granted,
            noise,
            exited,
            profiles,
            cpi,
            mpki,
        } = scratch;
        wants.clear();
        capped.clear();
        granted.clear();
        noise.clear();
        exited.clear();
        profiles.clear();

        // 1. Collect demands, clamped by bandwidth control. Thread counts
        //    land in their column, everything else in scratch columns.
        for (t, threads) in tasks.iter_mut().zip(cols.threads.iter_mut()) {
            let d = t.model.demand(now, dt, rng);
            *threads = d.threads;
            let want = d.cpu_want.max(0.0);
            let allowed = t.cgroup.clamp_cpu(want, now, dt);
            let was_capped = allowed < want - 1e-12;
            *throttle_events += u64::from(was_capped);
            capped.push(was_capped);
            wants.push(allowed);
        }

        // 2. CPU allocation: latency-sensitive first, then batch shares
        //    what remains proportionally.
        let ls_want: f64 = tasks
            .iter()
            .zip(wants.iter())
            .filter(|(t, _)| t.class == SchedClass::LatencySensitive)
            .map(|(_, &w)| w)
            .sum();
        let batch_want: f64 = wants.iter().sum::<f64>() - ls_want;
        let ls_scale = if ls_want > cores {
            cores / ls_want
        } else {
            1.0
        };
        let remaining = (cores - ls_want * ls_scale).max(0.0);
        let batch_scale = if batch_want > remaining {
            if batch_want > 0.0 {
                remaining / batch_want
            } else {
                1.0
            }
        } else {
            1.0
        };
        for (t, &w) in tasks.iter().zip(wants.iter()) {
            granted.push(if t.class == SchedClass::LatencySensitive {
                w * ls_scale
            } else {
                w * batch_scale
            });
        }
        *last_utilization = granted.iter().sum::<f64>() / cores;

        // 3. Interference model, streamed over profile columns with the
        //    grant column as activity. `profile()` is pure (no RNG, no
        //    mutation), so reading it here draws nothing.
        for t in tasks.iter() {
            let p = t.model.profile();
            profiles.push(&p);
            noise.push(p.cpi_noise);
        }
        let (_summary, _retained) =
            interference::compute_cols(platform, granted, profiles, params, cpi, mpki);

        // 4. Account counters and let models observe. The scratch columns
        //    are parallel to `tasks` (one push per task above), so lockstep
        //    zips replace index arithmetic — no panicking `[…]` anywhere.
        let first_exit = exits.len();
        let rows = tasks
            .iter_mut()
            .zip(cols.threads.iter().zip(cols.starved.iter_mut()))
            .zip(granted.iter().zip(capped.iter()))
            .zip(wants.iter().zip(noise.iter()))
            .zip(cpi.iter().zip(mpki.iter()));
        for (
            (((t, (&threads, starved)), (&g, &was_capped)), (&want, &sigma)),
            (&eff_cpi, &eff_mpki),
        ) in rows
        {
            // Starvation: the task wanted meaningful CPU, was not capped,
            // yet machine pressure squeezed it to a trickle.
            if !was_capped && want > 0.25 && g < 0.1 * want {
                *starved += 1;
            } else {
                *starved = 0;
            }
            let noise_mult = if sigma > 0.0 {
                rng.lognormal(0.0, sigma)
            } else {
                1.0
            };
            let cpi = eff_cpi * noise_mult;
            let cycles = g * platform.clock_hz * dt_sec;
            let instructions = if cpi > 0.0 { cycles / cpi } else { 0.0 };
            let l3 = instructions * eff_mpki / 1000.0;
            let block = CounterBlock {
                cycles,
                instructions,
                l2_misses: l3 * 2.5,
                l3_misses: l3,
                mem_lines: l3 * 1.1,
                context_switches: (threads as f64
                    * CTX_SWITCHES_PER_THREAD_SEC
                    * dt_sec
                    * g.clamp(0.05, 1.0)) as u64,
                cpu_time_us: g * dt.as_us() as f64,
            };
            t.cgroup.charge(&block);
            let outcome = TickOutcome {
                cpu_granted: g,
                capped: was_capped,
                cpi,
                instructions,
                l3_misses: l3,
            };
            t.last_outcome = Some(outcome);
            let is_exit = t.model.observe(now + dt, &outcome) == TaskAction::Exit;
            exited.push(is_exit);
            if is_exit {
                exits.push(TaskExit {
                    id: t.id,
                    at: now + dt,
                    capped: was_capped,
                });
            }
        }
        // Compact the task vector and every column in lockstep against the
        // shared exit-flag column.
        if exits.len() > first_exit {
            let keep: &mut Vec<bool> = exited;
            for flag in keep.iter_mut() {
                *flag = !*flag;
            }
            retain_by_flags(tasks, keep);
            retain_by_flags(&mut cols.threads, keep);
            retain_by_flags(&mut cols.starved, keep);
        }
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("id", &self.id)
            .field("platform", &self.platform.name)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::task::{ConstantLoad, ResourceProfile};

    fn tid(j: u32, i: u32) -> TaskId {
        TaskId {
            job: JobId(j),
            index: i,
        }
    }

    fn add_constant(
        m: &mut Machine,
        id: TaskId,
        name: &str,
        class: SchedClass,
        cpu: f64,
        profile: ResourceProfile,
    ) {
        m.add_task(
            TaskInstance {
                id,
                model: Box::new(ConstantLoad::new(cpu, 4, profile)),
            },
            name,
            class,
            if class == SchedClass::LatencySensitive {
                Priority::Production
            } else {
                Priority::NonProduction
            },
            None,
        );
    }

    #[test]
    fn single_task_gets_full_demand() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 1);
        add_constant(
            &mut m,
            tid(1, 0),
            "svc",
            SchedClass::LatencySensitive,
            2.0,
            ResourceProfile::compute_bound(),
        );
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut Vec::new());
        let t = m.task(tid(1, 0)).unwrap();
        let out = t.last_outcome().unwrap();
        assert!((out.cpu_granted - 2.0).abs() < 1e-9);
        assert!(!out.capped);
        assert!(out.cpi > 0.5 && out.cpi < 1.5, "cpi={}", out.cpi);
        assert!((m.utilization() - 2.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn ls_preference_under_overload() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 2);
        add_constant(
            &mut m,
            tid(1, 0),
            "svc",
            SchedClass::LatencySensitive,
            8.0,
            ResourceProfile::compute_bound(),
        );
        add_constant(
            &mut m,
            tid(2, 0),
            "batch",
            SchedClass::Batch,
            10.0,
            ResourceProfile::streaming(),
        );
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut Vec::new());
        let ls = m
            .task(tid(1, 0))
            .unwrap()
            .last_outcome()
            .unwrap()
            .cpu_granted;
        let b = m
            .task(tid(2, 0))
            .unwrap()
            .last_outcome()
            .unwrap()
            .cpu_granted;
        // LS gets its full 8 cores; batch squeezed into the remaining 4.
        assert!((ls - 8.0).abs() < 1e-9, "ls={ls}");
        assert!((b - 4.0).abs() < 1e-9, "batch={b}");
    }

    #[test]
    fn hard_cap_limits_task() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 3);
        add_constant(
            &mut m,
            tid(2, 0),
            "batch",
            SchedClass::Batch,
            5.0,
            ResourceProfile::streaming(),
        );
        m.task_mut(tid(2, 0))
            .unwrap()
            .cgroup
            .apply_hard_cap(0.1, SimTime::from_mins(5));
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut Vec::new());
        let out = *m.task(tid(2, 0)).unwrap().last_outcome().unwrap();
        assert!((out.cpu_granted - 0.1).abs() < 1e-9);
        assert!(out.capped);
    }

    #[test]
    fn capping_antagonist_improves_victim_cpi() {
        // The end-to-end mechanism of the whole paper, at machine scale.
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 4);
        add_constant(
            &mut m,
            tid(1, 0),
            "victim",
            SchedClass::LatencySensitive,
            2.0,
            ResourceProfile::cache_heavy(),
        );
        add_constant(
            &mut m,
            tid(2, 0),
            "antagonist",
            SchedClass::BestEffort,
            8.0,
            ResourceProfile::streaming(),
        );
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut before = 0.0;
        for _ in 0..30 {
            m.tick(now, dt, &mut Vec::new());
            before += m.task(tid(1, 0)).unwrap().last_outcome().unwrap().cpi / 30.0;
            now += dt;
        }
        m.task_mut(tid(2, 0))
            .unwrap()
            .cgroup
            .apply_hard_cap(0.01, now + SimDuration::from_hours(1));
        // Let the cap take effect, then measure.
        let mut after = 0.0;
        for _ in 0..30 {
            m.tick(now, dt, &mut Vec::new());
            after += m.task(tid(1, 0)).unwrap().last_outcome().unwrap().cpi / 30.0;
            now += dt;
        }
        assert!(
            after < before * 0.8,
            "victim CPI before cap {before}, after {after}"
        );
    }

    #[test]
    fn counters_accumulate_consistently() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 5);
        add_constant(
            &mut m,
            tid(1, 0),
            "svc",
            SchedClass::LatencySensitive,
            1.0,
            ResourceProfile::compute_bound(),
        );
        for i in 0..10 {
            m.tick(
                SimTime::from_secs(i),
                SimDuration::from_secs(1),
                &mut Vec::new(),
            );
        }
        let c = m.task(tid(1, 0)).unwrap().task().cgroup.counters();
        // 10 s at 1 core of a 2.6 GHz machine.
        assert!((c.cycles - 2.6e10).abs() / 2.6e10 < 1e-6);
        assert!(c.instructions > 0.0);
        let cpi = c.cpi().unwrap();
        assert!(cpi > 0.7 && cpi < 1.2, "cpi={cpi}");
        assert!((c.cpu_time_us - 1e7).abs() < 1.0);
        assert!(c.context_switches > 0);
    }

    #[test]
    fn reserved_cpu_ignores_temporary_hard_caps() {
        // Admission control must see the long-term reservation, not the
        // rate a transient hard cap happens to enforce at t=0.
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 40);
        m.add_task(
            TaskInstance {
                id: tid(1, 0),
                model: Box::new(ConstantLoad::new(2.0, 4, ResourceProfile::compute_bound())),
            },
            "svc",
            SchedClass::LatencySensitive,
            Priority::Production,
            Some(2.0),
        );
        assert!((m.reserved_cpu(SchedClass::LatencySensitive) - 2.0).abs() < 1e-12);
        // A hard cap spanning t=0 must not shrink the reservation.
        m.task_mut(tid(1, 0))
            .unwrap()
            .cgroup
            .apply_hard_cap(0.1, SimTime::from_mins(5));
        assert!((m.reserved_cpu(SchedClass::LatencySensitive) - 2.0).abs() < 1e-12);
        // Unlimited tasks reserve nothing; other classes are excluded.
        add_constant(
            &mut m,
            tid(2, 0),
            "batch",
            SchedClass::Batch,
            1.0,
            ResourceProfile::streaming(),
        );
        assert!((m.reserved_cpu(SchedClass::LatencySensitive) - 2.0).abs() < 1e-12);
        assert_eq!(m.reserved_cpu(SchedClass::Batch), 0.0);
    }

    #[test]
    fn empty_machine_fast_path_is_inert() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 41);
        let mut exits = Vec::new();
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut exits);
        assert!(exits.is_empty());
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.throttle_events(), 0);
        // The fast path must not disturb the RNG stream: a task added
        // after N empty ticks behaves exactly as on a fresh machine.
        for i in 0..100 {
            m.tick(SimTime::from_secs(i), SimDuration::from_secs(1), &mut exits);
        }
        let mut fresh = Machine::new(MachineId(0), Platform::westmere(), 41);
        for machine in [&mut m, &mut fresh] {
            add_constant(
                machine,
                tid(1, 0),
                "svc",
                SchedClass::LatencySensitive,
                2.0,
                ResourceProfile::compute_bound(),
            );
            machine.tick(
                SimTime::from_secs(100),
                SimDuration::from_secs(1),
                &mut exits,
            );
        }
        let a = m.task(tid(1, 0)).unwrap().last_outcome().unwrap().cpi;
        let b = fresh.task(tid(1, 0)).unwrap().last_outcome().unwrap().cpi;
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn exits_buffer_is_appended_not_cleared() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 42);
        let mut exits = vec![TaskExit {
            id: tid(9, 9),
            at: SimTime::ZERO,
            capped: false,
        }];
        add_constant(
            &mut m,
            tid(1, 0),
            "svc",
            SchedClass::Batch,
            1.0,
            ResourceProfile::compute_bound(),
        );
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut exits);
        // Pre-existing contents survive; nothing exited this tick.
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].id, tid(9, 9));
    }

    #[test]
    fn remove_task_works() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 6);
        add_constant(
            &mut m,
            tid(1, 0),
            "a",
            SchedClass::Batch,
            1.0,
            ResourceProfile::compute_bound(),
        );
        assert_eq!(m.task_count(), 1);
        assert!(m.remove_task(tid(1, 0)));
        assert!(!m.remove_task(tid(1, 0)));
        assert_eq!(m.task_count(), 0);
    }

    #[test]
    fn thread_count_tracks_models() {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 7);
        add_constant(
            &mut m,
            tid(1, 0),
            "a",
            SchedClass::Batch,
            1.0,
            ResourceProfile::compute_bound(),
        );
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut Vec::new());
        assert_eq!(m.thread_count(), 4);
    }

    #[test]
    fn exiting_model_is_removed() {
        struct ExitAfter {
            ticks: u32,
        }
        impl TaskModel for ExitAfter {
            fn profile(&self) -> ResourceProfile {
                ResourceProfile::compute_bound()
            }
            fn demand(
                &mut self,
                _now: SimTime,
                _dt: SimDuration,
                _rng: &mut SimRng,
            ) -> crate::task::TaskDemand {
                crate::task::TaskDemand {
                    cpu_want: 1.0,
                    threads: 1,
                }
            }
            fn observe(&mut self, _now: SimTime, _o: &TickOutcome) -> TaskAction {
                if self.ticks == 0 {
                    TaskAction::Exit
                } else {
                    self.ticks -= 1;
                    TaskAction::Continue
                }
            }
        }
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 8);
        m.add_task(
            TaskInstance {
                id: tid(1, 0),
                model: Box::new(ExitAfter { ticks: 2 }),
            },
            "quitter",
            SchedClass::Batch,
            Priority::NonProduction,
            None,
        );
        let mut exited = Vec::new();
        for i in 0..5 {
            m.tick(
                SimTime::from_secs(i),
                SimDuration::from_secs(1),
                &mut exited,
            );
        }
        assert_eq!(exited.len(), 1);
        assert_eq!(exited[0].id, tid(1, 0));
        assert_eq!(m.task_count(), 0);
    }
}
