//! Hardware platform (CPU type) descriptors.
//!
//! The paper stresses that "the CPI is a function of the hardware platform
//! (CPU type)" and that CPI² "does separate CPI calculations for each
//! platform a job runs on" (§3.1). A [`Platform`] captures the parameters
//! the interference model and counter emulation need.

use serde::{Deserialize, Serialize};

/// Description of one machine hardware platform (CPU type).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Platform name, e.g. `"westmere-2.6GHz"`; the `platforminfo` string
    /// in CPI sample records.
    pub name: String,
    /// Number of hardware contexts (CPUs) on the machine.
    pub cores: u32,
    /// Reference clock in cycles per second (the `CPU_CLK_UNHALTED.REF`
    /// rate).
    pub clock_hz: f64,
    /// Shared last-level (L3) cache capacity in megabytes.
    pub l3_mb: f64,
    /// Memory bandwidth capacity in giga-transactions of cache lines per
    /// second (normalized units used by the interference model).
    pub mem_bw_glines: f64,
    /// Cycles a last-level cache miss stalls the pipeline for, on average.
    pub miss_penalty_cycles: f64,
    /// Multiplier applied to every job's reference CPI on this platform
    /// (different microarchitectures run the same binary at different CPI).
    pub cpi_factor: f64,
    /// Cost of saving/restoring performance counters on an inter-cgroup
    /// context switch, in microseconds ("a couple of microseconds", §3.1).
    pub counter_switch_us: f64,
}

impl Platform {
    /// A mid-2011-era 12-core platform (the "older" CPU type in Fig. 4).
    pub fn westmere() -> Self {
        Platform {
            name: "westmere-2.6GHz".to_string(),
            cores: 12,
            clock_hz: 2.6e9,
            l3_mb: 12.0,
            mem_bw_glines: 0.4,
            miss_penalty_cycles: 180.0,
            cpi_factor: 1.0,
            counter_switch_us: 2.0,
        }
    }

    /// A newer 16-core platform with a larger cache and faster memory (the
    /// second CPU type in Fig. 4).
    pub fn sandy_bridge() -> Self {
        Platform {
            name: "sandybridge-2.2GHz".to_string(),
            cores: 16,
            clock_hz: 2.2e9,
            l3_mb: 20.0,
            mem_bw_glines: 0.6,
            miss_penalty_cycles: 160.0,
            cpi_factor: 0.85,
            counter_switch_us: 2.0,
        }
    }

    /// A small 8-core platform, useful for dense-tenancy tests.
    pub fn small_node() -> Self {
        Platform {
            name: "smallnode-2.0GHz".to_string(),
            cores: 8,
            clock_hz: 2.0e9,
            l3_mb: 8.0,
            mem_bw_glines: 0.3,
            miss_penalty_cycles: 200.0,
            cpi_factor: 1.1,
            counter_switch_us: 2.0,
        }
    }

    /// Instructions retired per second for one core running flat out at the
    /// given CPI.
    pub fn ips_at(&self, cpi: f64) -> f64 {
        assert!(cpi > 0.0, "ips_at: cpi must be positive");
        self.clock_hz / cpi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_platforms_sane() {
        for p in [
            Platform::westmere(),
            Platform::sandy_bridge(),
            Platform::small_node(),
        ] {
            assert!(p.cores > 0);
            assert!(p.clock_hz > 1e9);
            assert!(p.l3_mb > 0.0);
            assert!(p.mem_bw_glines > 0.0);
            assert!(p.cpi_factor > 0.0);
            assert!(!p.name.is_empty());
        }
    }

    #[test]
    fn ips_inverse_in_cpi() {
        let p = Platform::westmere();
        assert!((p.ips_at(1.0) - 2.6e9).abs() < 1.0);
        assert!((p.ips_at(2.0) - 1.3e9).abs() < 1.0);
    }

    #[test]
    fn platform_names_distinct() {
        assert_ne!(Platform::westmere().name, Platform::sandy_bridge().name);
    }
}
