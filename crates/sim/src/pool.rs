//! Persistent worker pool for the parallel per-machine tick phase.
//!
//! [`Cluster::step`](crate::cluster::Cluster::step) shards machines
//! across these workers by contiguous [`MachineId`] range. Machines move
//! to a worker by value over a channel and come back the same way, so no
//! borrows cross threads and the pool outlives any one tick — spawning
//! threads per tick costs tens of microseconds each, which would swamp
//! the tick work itself on small fleets. Results are reassembled in
//! shard order, keeping machine order (and therefore the trace) identical
//! to the serial path.

use crate::machine::{Machine, MachineId, TaskExit};
use crate::time::{SimDuration, SimTime};
use cpi2_telemetry::{Gauge, Histo, Telemetry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

/// One tick's worth of work for one worker: a contiguous run of machines,
/// an empty (but warm) buffer to collect exits into, the tick window, and
/// whether to measure shard wall-clock time (clock reads are skipped
/// entirely when telemetry is disabled).
type ShardJob = (
    Vec<Machine>,
    Vec<(MachineId, TaskExit)>,
    SimTime,
    SimDuration,
    bool,
);

/// A worker's answer: the machines handed back, the exits they produced
/// (in machine order), and busy wall-clock µs when measurement was on.
/// `Err` means the shard panicked. The machine and exit vectors are the
/// job's own buffers coming home, so the pool can reuse them next tick.
type ShardOutcome = Result<(Vec<Machine>, Vec<(MachineId, TaskExit)>, u64), ()>;

/// Cached telemetry handles for the worker pool, resolved by
/// [`crate::cluster::Cluster`] when its config carries live telemetry.
#[derive(Debug, Clone, Default)]
pub(crate) struct PoolMetrics {
    /// Wall-clock µs each dispatched shard spent ticking its machines.
    pub(crate) shard_busy_us: Histo,
    /// Mean worker utilization over the last parallel tick: total shard
    /// busy time divided by (dispatched shards × tick wall time).
    pub(crate) utilization: Gauge,
    /// Shards dispatched in the last parallel tick.
    pub(crate) shards: Gauge,
}

impl PoolMetrics {
    pub(crate) fn new(telemetry: &Telemetry) -> PoolMetrics {
        PoolMetrics {
            shard_busy_us: telemetry.histogram("cpi_sim_pool_shard_busy_us", &[]),
            utilization: telemetry.gauge("cpi_sim_pool_utilization", &[]),
            shards: telemetry.gauge("cpi_sim_pool_shards", &[]),
        }
    }

    fn enabled(&self) -> bool {
        self.shard_busy_us.enabled()
    }
}

pub(crate) struct TickPool {
    txs: Vec<Sender<ShardJob>>,
    rx: Receiver<(usize, ShardOutcome)>,
    handles: Vec<JoinHandle<()>>,
    /// Recycled shard machine buffers (empty, warm capacity).
    shard_bufs: Vec<Vec<Machine>>,
    /// Recycled per-shard exit buffers (empty, warm capacity).
    exit_bufs: Vec<Vec<(MachineId, TaskExit)>>,
    /// Recycled reassembly slots, indexed by worker.
    slots: Vec<Option<ShardOutcome>>,
}

impl TickPool {
    /// Spawns `workers` (≥ 1) long-lived worker threads.
    pub(crate) fn new(workers: usize) -> Self {
        let (res_tx, rx) = unbounded::<(usize, ShardOutcome)>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers.max(1) {
            let (tx, job_rx) = unbounded::<ShardJob>();
            let res_tx = res_tx.clone();
            handles.push(std::thread::spawn(move || {
                // Per-worker exit staging buffer, reused across machines
                // and across ticks.
                let mut tmp: Vec<TaskExit> = Vec::new();
                while let Ok((mut machines, mut exits, now, dt, measure)) = job_rx.recv() {
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let started = measure.then(Instant::now);
                        for m in &mut machines {
                            let id = m.id;
                            tmp.clear();
                            m.tick(now, dt, &mut tmp);
                            exits.extend(tmp.drain(..).map(|e| (id, e)));
                        }
                        started.map_or(0, |t| t.elapsed().as_micros().min(u64::MAX as u128) as u64)
                    }));
                    let outcome = match res {
                        Ok(busy_us) => Ok((machines, exits, busy_us)),
                        Err(_) => Err(()),
                    };
                    if res_tx.send((idx, outcome)).is_err() {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        TickPool {
            txs,
            rx,
            handles,
            shard_bufs: Vec::new(),
            exit_bufs: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Runs one tick across the pool: `machines` is carved into contiguous
    /// shards, dispatched, and reassembled in the original order; exits are
    /// *appended* to `exits` in machine order. Shard and exit buffers are
    /// recycled across ticks, so a warmed-up pool dispatches a tick without
    /// heap allocation.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker's machine tick.
    pub(crate) fn tick(
        &mut self,
        machines: &mut Vec<Machine>,
        now: SimTime,
        dt: SimDuration,
        exits: &mut Vec<(MachineId, TaskExit)>,
        metrics: Option<&PoolMetrics>,
    ) {
        let measure = metrics.is_some_and(PoolMetrics::enabled);
        let wall_start = measure.then(Instant::now);
        let total = machines.len();
        let shard_len = total.div_ceil(self.txs.len()).max(1);
        let mut rest = std::mem::take(machines);
        let mut dispatched = 0;
        {
            let mut drain = rest.drain(..);
            loop {
                let mut shard = self.shard_bufs.pop().unwrap_or_default();
                shard.extend(drain.by_ref().take(shard_len));
                if shard.is_empty() {
                    self.shard_bufs.push(shard);
                    break;
                }
                let exit_buf = self.exit_bufs.pop().unwrap_or_default();
                self.txs[dispatched]
                    .send((shard, exit_buf, now, dt, measure))
                    .expect("tick worker exited early");
                dispatched += 1;
            }
        }
        // Hand the (now empty, still warm) fleet buffer back to the caller
        // before refilling it in shard order.
        *machines = rest;
        self.slots.clear();
        self.slots.resize_with(dispatched, || None);
        for _ in 0..dispatched {
            let (idx, outcome) = self.rx.recv().expect("tick worker exited early");
            self.slots[idx] = Some(outcome);
        }
        let mut total_busy_us = 0u64;
        for slot in self.slots.iter_mut() {
            let (mut ms, mut ex, busy_us) = slot
                .take()
                .expect("every dispatched shard reports once")
                .expect("machine shard worker panicked");
            machines.append(&mut ms);
            exits.append(&mut ex);
            self.shard_bufs.push(ms);
            self.exit_bufs.push(ex);
            total_busy_us += busy_us;
            if measure {
                if let Some(metrics) = metrics {
                    metrics.shard_busy_us.record(busy_us as f64);
                }
            }
        }
        if let (Some(metrics), Some(wall_start)) = (metrics, wall_start) {
            if dispatched > 0 {
                metrics.shards.set(dispatched as f64);
                let wall_us = wall_start.elapsed().as_secs_f64() * 1e6;
                if wall_us > 0.0 {
                    metrics
                        .utilization
                        .set(total_busy_us as f64 / (wall_us * dispatched as f64));
                }
            }
        }
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for TickPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickPool")
            .field("workers", &self.txs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn machines(n: u32) -> Vec<Machine> {
        (0..n)
            .map(|i| Machine::new(MachineId(i), Platform::westmere(), i as u64))
            .collect()
    }

    #[test]
    fn preserves_machine_order() {
        let mut pool = TickPool::new(3);
        let mut ms = machines(10);
        let mut exits = Vec::new();
        for _ in 0..5 {
            pool.tick(
                &mut ms,
                SimTime::ZERO,
                SimDuration::from_secs(1),
                &mut exits,
                None,
            );
        }
        assert_eq!(ms.len(), 10);
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.id, MachineId(i as u32));
        }
    }

    #[test]
    fn more_workers_than_machines() {
        let mut pool = TickPool::new(8);
        let mut ms = machines(3);
        pool.tick(
            &mut ms,
            SimTime::ZERO,
            SimDuration::from_secs(1),
            &mut Vec::new(),
            None,
        );
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn empty_fleet_is_a_no_op() {
        let mut pool = TickPool::new(2);
        let mut ms = Vec::new();
        let mut exits = Vec::new();
        pool.tick(
            &mut ms,
            SimTime::ZERO,
            SimDuration::from_secs(1),
            &mut exits,
            None,
        );
        assert!(exits.is_empty());
        assert!(ms.is_empty());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = TickPool::new(4);
        assert_eq!(pool.workers(), 4);
        drop(pool); // must not hang
    }
}
