//! Deferred cluster events: a time-ordered queue of scripted actions.
//!
//! Experiments script scenarios — "the batch job lands at minute 40",
//! "the operator kills the task at 2:30 am" — as events executed by the
//! cluster when their time comes.

use crate::cluster::ModelFactory;
use crate::job::{JobSpec, TaskId};
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// A deferred action on the cluster.
pub enum ClusterEvent {
    /// Submit a job (restart_on_exit, factory).
    SubmitJob {
        /// The job to submit.
        spec: JobSpec,
        /// Whether the cluster respawns exited tasks.
        restart_on_exit: bool,
        /// Model factory for the job's tasks.
        factory: ModelFactory,
    },
    /// Kill a task.
    KillTask(TaskId),
    /// Kill a task and restart it elsewhere.
    MigrateTask(TaskId),
    /// Apply a CPU hard cap.
    HardCap {
        /// Target task.
        task: TaskId,
        /// Cap rate, CPU-sec/sec.
        cpu_rate: f64,
        /// Expiry.
        until: SimTime,
    },
    /// Record a note in the trace.
    Note(String),
}

impl std::fmt::Debug for ClusterEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterEvent::SubmitJob { spec, .. } => f
                .debug_struct("SubmitJob")
                .field("job", &spec.name)
                .finish(),
            ClusterEvent::KillTask(t) => f.debug_tuple("KillTask").field(t).finish(),
            ClusterEvent::MigrateTask(t) => f.debug_tuple("MigrateTask").field(t).finish(),
            ClusterEvent::HardCap { task, cpu_rate, .. } => f
                .debug_struct("HardCap")
                .field("task", task)
                .field("rate", cpu_rate)
                .finish(),
            ClusterEvent::Note(s) => f.debug_tuple("Note").field(s).finish(),
        }
    }
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: ClusterEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with the
        // submission sequence breaking ties deterministically.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event at `at`.
    pub fn schedule(&mut self, at: SimTime, event: ClusterEvent) {
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops every event due at or before `now`, in time order.
    pub fn due(&mut self, now: SimTime) -> Vec<ClusterEvent> {
        let mut out = Vec::new();
        while self.heap.peek().is_some_and(|s| s.at <= now) {
            out.push(self.heap.pop().expect("peeked").event);
        }
        out
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl std::fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_events_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), ClusterEvent::Note("b".into()));
        q.schedule(SimTime::from_secs(10), ClusterEvent::Note("a".into()));
        q.schedule(SimTime::from_secs(50), ClusterEvent::Note("c".into()));
        let due = q.due(SimTime::from_secs(30));
        let names: Vec<String> = due
            .iter()
            .map(|e| match e {
                ClusterEvent::Note(s) => s.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn same_time_preserves_submission_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::from_secs(10), ClusterEvent::Note(format!("{i}")));
        }
        let due = q.due(SimTime::from_secs(10));
        let names: Vec<String> = due
            .iter()
            .map(|e| match e {
                ClusterEvent::Note(s) => s.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["0", "1", "2", "3", "4"]);
    }

    #[test]
    fn nothing_due_before_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ClusterEvent::Note("x".into()));
        assert!(q.due(SimTime::from_secs(9)).is_empty());
        assert!(!q.is_empty());
    }
}
