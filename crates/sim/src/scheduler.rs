//! The central cluster scheduler and admission controller.
//!
//! Per §2: "Each of our clusters runs a central scheduler and admission
//! controller that ensures that resources are not oversubscribed among the
//! latency-sensitive jobs, although it speculatively over-commits resources
//! allocated to batch ones." This module reproduces that policy plus two
//! extensions the paper discusses:
//!
//! * anti-affinity constraints (§5/§9: keep a job away from a named
//!   antagonist), and
//! * an optional *cache-aware* placement policy (§8's contention-aware
//!   scheduling line of work; §9 lists "affinity-based placement" as a
//!   valuable direction) that balances cache-footprint pressure instead of
//!   only CPU reservations.

use crate::job::{JobId, SchedClass};
use crate::machine::MachineId;
use cpi2_stats::rng::SimRng;
use std::collections::{BTreeMap, HashSet};

/// Why a placement request could not be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// No machine has admission-control headroom for the reservation.
    NoCapacity,
    /// Anti-affinity constraints excluded every feasible machine.
    ConstraintsUnsatisfiable,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCapacity => write!(f, "no machine with sufficient capacity"),
            PlacementError::ConstraintsUnsatisfiable => {
                write!(f, "anti-affinity constraints exclude all feasible machines")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Placement scoring policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Paper-era default: spread by reserved CPU only (interference-blind).
    #[default]
    LeastLoaded,
    /// Contention-aware: prefer the machine whose shared cache is least
    /// pressured by the new task's footprint, breaking ties by CPU load.
    CacheAware,
}

/// Book-keeping for one machine's reservations.
#[derive(Debug, Clone, Default)]
struct MachineBook {
    cores: f64,
    l3_mb: f64,
    reserved_ls: f64,
    reserved_batch: f64,
    reserved_cache_mb: f64,
    // BTreeMap, not HashMap: placement scans iterate resident jobs, and
    // committed placements must not depend on hash order.
    jobs: BTreeMap<JobId, u32>, // job -> resident task count
}

/// The central scheduler: placement, admission control, anti-affinity.
#[derive(Debug)]
pub struct Scheduler {
    books: BTreeMap<MachineId, MachineBook>,
    /// Batch reservations may reach `overcommit × cores` beyond LS usage.
    overcommit: f64,
    /// Pairs of jobs that must not share a machine.
    anti_affinity: HashSet<(JobId, JobId)>,
    policy: PlacementPolicy,
    rng: SimRng,
}

impl Scheduler {
    /// Creates a scheduler with the given batch overcommit factor
    /// (1.0 = no overcommit; the simulations default to 1.5).
    ///
    /// # Panics
    ///
    /// Panics if `overcommit < 1.0`.
    pub fn new(overcommit: f64, seed: u64) -> Self {
        assert!(overcommit >= 1.0, "overcommit must be ≥ 1.0");
        Scheduler {
            books: BTreeMap::new(),
            overcommit,
            anti_affinity: HashSet::new(),
            policy: PlacementPolicy::default(),
            rng: SimRng::derive(seed, 0xC0DE),
        }
    }

    /// Switches the placement policy.
    pub fn set_policy(&mut self, policy: PlacementPolicy) {
        self.policy = policy;
    }

    /// Current placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Registers a machine with its core count and shared-cache size.
    pub fn register_machine(&mut self, id: MachineId, cores: u32, l3_mb: f64) {
        self.books.insert(
            id,
            MachineBook {
                cores: cores as f64,
                l3_mb: l3_mb.max(1e-9),
                ..Default::default()
            },
        );
    }

    /// Adds a symmetric anti-affinity constraint between two jobs — the
    /// "don't co-locate my job with this antagonist" request of §5/§9.
    pub fn add_anti_affinity(&mut self, a: JobId, b: JobId) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.anti_affinity.insert(key);
    }

    fn conflicts(&self, job: JobId, book: &MachineBook) -> bool {
        book.jobs.keys().any(|&other| {
            let key = if job <= other {
                (job, other)
            } else {
                (other, job)
            };
            job != other && self.anti_affinity.contains(&key)
        })
    }

    fn headroom(&self, book: &MachineBook, class: SchedClass) -> f64 {
        match class {
            // LS admission: no oversubscription among latency-sensitive jobs.
            SchedClass::LatencySensitive => book.cores - book.reserved_ls,
            // Batch admission: speculative overcommit beyond LS reservations.
            _ => book.cores * self.overcommit - book.reserved_ls - book.reserved_batch,
        }
    }

    fn score(&self, book: &MachineBook, cache_mb: f64) -> (f64, f64) {
        let load = (book.reserved_ls + book.reserved_batch) / book.cores;
        match self.policy {
            PlacementPolicy::LeastLoaded => (load, 0.0),
            PlacementPolicy::CacheAware => {
                let pressure = (book.reserved_cache_mb + cache_mb) / book.l3_mb;
                (pressure, load)
            }
        }
    }

    /// Chooses a machine for one task of `job` with the given class, CPU
    /// reservation, and cache footprint. Spreads load by picking randomly
    /// among the best-scoring feasible candidates.
    pub fn place(
        &mut self,
        job: JobId,
        class: SchedClass,
        cpu: f64,
        cache_mb: f64,
    ) -> Result<MachineId, PlacementError> {
        self.place_excluding(job, class, cpu, cache_mb, None)
    }

    /// Like [`Scheduler::place`] but never picks `exclude` (used by
    /// migration: "restart it somewhere else", §5). Falls back to the
    /// excluded machine only if it is the sole feasible one.
    pub fn place_excluding(
        &mut self,
        job: JobId,
        class: SchedClass,
        cpu: f64,
        cache_mb: f64,
        exclude: Option<MachineId>,
    ) -> Result<MachineId, PlacementError> {
        let mut feasible: Vec<(MachineId, (f64, f64))> = Vec::new();
        let mut any_capacity = false;
        for (&id, book) in &self.books {
            if Some(id) == exclude {
                continue;
            }
            if self.headroom(book, class) >= cpu {
                any_capacity = true;
                if !self.conflicts(job, book) {
                    feasible.push((id, self.score(book, cache_mb)));
                }
            }
        }
        if feasible.is_empty() {
            // Nothing else fits: accept the excluded machine rather than
            // fail outright.
            if exclude.is_some() {
                return self.place_excluding(job, class, cpu, cache_mb, None);
            }
            return Err(if any_capacity {
                PlacementError::ConstraintsUnsatisfiable
            } else {
                PlacementError::NoCapacity
            });
        }
        // Random choice among the k best-scoring, for spread.
        feasible.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        let k = feasible.len().min(4);
        let pick = feasible[self.rng.below(k as u64) as usize].0;
        self.commit(pick, job, class, cpu, cache_mb);
        Ok(pick)
    }

    /// Records a placement made externally (e.g. replaying a trace).
    pub fn commit(
        &mut self,
        machine: MachineId,
        job: JobId,
        class: SchedClass,
        cpu: f64,
        cache_mb: f64,
    ) {
        let book = self.books.get_mut(&machine).expect("machine registered");
        match class {
            SchedClass::LatencySensitive => book.reserved_ls += cpu,
            _ => book.reserved_batch += cpu,
        }
        book.reserved_cache_mb += cache_mb;
        *book.jobs.entry(job).or_insert(0) += 1;
    }

    /// Releases one task's reservation (task exit / kill / migrate).
    pub fn release(
        &mut self,
        machine: MachineId,
        job: JobId,
        class: SchedClass,
        cpu: f64,
        cache_mb: f64,
    ) {
        if let Some(book) = self.books.get_mut(&machine) {
            match class {
                SchedClass::LatencySensitive => {
                    book.reserved_ls = (book.reserved_ls - cpu).max(0.0)
                }
                _ => book.reserved_batch = (book.reserved_batch - cpu).max(0.0),
            }
            book.reserved_cache_mb = (book.reserved_cache_mb - cache_mb).max(0.0);
            if let Some(n) = book.jobs.get_mut(&job) {
                *n -= 1;
                if *n == 0 {
                    book.jobs.remove(&job);
                }
            }
        }
    }

    /// Reserved (LS, batch) CPU on a machine.
    pub fn reservations(&self, machine: MachineId) -> Option<(f64, f64)> {
        self.books
            .get(&machine)
            .map(|b| (b.reserved_ls, b.reserved_batch))
    }

    /// Reserved cache footprint on a machine, MB.
    pub fn reserved_cache_mb(&self, machine: MachineId) -> Option<f64> {
        self.books.get(&machine).map(|b| b.reserved_cache_mb)
    }

    /// Number of registered machines.
    pub fn machine_count(&self) -> usize {
        self.books.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_with_machines(n: u32, cores: u32) -> Scheduler {
        let mut s = Scheduler::new(1.5, 42);
        for i in 0..n {
            s.register_machine(MachineId(i), cores, 12.0);
        }
        s
    }

    #[test]
    fn ls_admission_not_oversubscribed() {
        let mut s = sched_with_machines(1, 12);
        // 12 cores: exactly 6 two-core LS tasks fit, the 7th is rejected.
        for _ in 0..6 {
            s.place(JobId(1), SchedClass::LatencySensitive, 2.0, 1.0)
                .unwrap();
        }
        let err = s.place(JobId(1), SchedClass::LatencySensitive, 2.0, 1.0);
        assert_eq!(err, Err(PlacementError::NoCapacity));
    }

    #[test]
    fn batch_overcommits() {
        let mut s = sched_with_machines(1, 10);
        s.place(JobId(1), SchedClass::LatencySensitive, 10.0, 1.0)
            .unwrap();
        // LS is full, but batch can still land thanks to 1.5× overcommit.
        s.place(JobId(2), SchedClass::Batch, 5.0, 1.0).unwrap();
        let err = s.place(JobId(2), SchedClass::Batch, 1.0, 1.0);
        assert_eq!(err, Err(PlacementError::NoCapacity));
    }

    #[test]
    fn release_restores_capacity() {
        let mut s = sched_with_machines(1, 4);
        let m = s
            .place(JobId(1), SchedClass::LatencySensitive, 4.0, 2.0)
            .unwrap();
        assert!(s
            .place(JobId(1), SchedClass::LatencySensitive, 1.0, 1.0)
            .is_err());
        s.release(m, JobId(1), SchedClass::LatencySensitive, 4.0, 2.0);
        assert_eq!(s.reserved_cache_mb(m), Some(0.0));
        assert!(s
            .place(JobId(1), SchedClass::LatencySensitive, 4.0, 2.0)
            .is_ok());
    }

    #[test]
    fn anti_affinity_respected() {
        let mut s = sched_with_machines(2, 8);
        s.add_anti_affinity(JobId(1), JobId(2));
        let m1 = s.place(JobId(1), SchedClass::Batch, 1.0, 1.0).unwrap();
        let m2 = s.place(JobId(2), SchedClass::Batch, 1.0, 1.0).unwrap();
        assert_ne!(m1, m2);
        // Fill both machines with job 1; job 2 now has nowhere to go.
        let mut s = sched_with_machines(2, 8);
        s.add_anti_affinity(JobId(1), JobId(2));
        s.commit(MachineId(0), JobId(1), SchedClass::Batch, 1.0, 1.0);
        s.commit(MachineId(1), JobId(1), SchedClass::Batch, 1.0, 1.0);
        assert_eq!(
            s.place(JobId(2), SchedClass::Batch, 1.0, 1.0),
            Err(PlacementError::ConstraintsUnsatisfiable)
        );
    }

    #[test]
    fn spread_uses_multiple_machines() {
        let mut s = sched_with_machines(10, 12);
        let mut used = HashSet::new();
        for _ in 0..40 {
            used.insert(s.place(JobId(1), SchedClass::Batch, 1.0, 1.0).unwrap());
        }
        assert!(used.len() >= 5, "used {} machines", used.len());
    }

    #[test]
    fn place_excluding_avoids_machine() {
        let mut s = sched_with_machines(3, 12);
        // Repeated placements never land on the excluded machine while
        // alternatives exist.
        for _ in 0..20 {
            let m = s
                .place_excluding(JobId(1), SchedClass::Batch, 0.5, 1.0, Some(MachineId(1)))
                .unwrap();
            assert_ne!(m, MachineId(1));
        }
    }

    #[test]
    fn place_excluding_falls_back_when_sole_option() {
        let mut s = sched_with_machines(1, 12);
        let m = s
            .place_excluding(JobId(1), SchedClass::Batch, 1.0, 1.0, Some(MachineId(0)))
            .unwrap();
        assert_eq!(m, MachineId(0));
    }

    #[test]
    fn reservations_accounting() {
        let mut s = sched_with_machines(1, 12);
        s.place(JobId(1), SchedClass::LatencySensitive, 3.0, 4.0)
            .unwrap();
        s.place(JobId(2), SchedClass::Batch, 2.0, 8.0).unwrap();
        assert_eq!(s.reservations(MachineId(0)), Some((3.0, 2.0)));
        assert_eq!(s.reserved_cache_mb(MachineId(0)), Some(12.0));
    }

    #[test]
    fn cache_aware_prefers_low_pressure() {
        let mut s = sched_with_machines(2, 12);
        s.set_policy(PlacementPolicy::CacheAware);
        // Machine 0 carries a huge resident footprint but little CPU;
        // machine 1 carries CPU load but a cold cache.
        s.commit(MachineId(0), JobId(9), SchedClass::Batch, 0.5, 11.0);
        s.commit(MachineId(1), JobId(8), SchedClass::Batch, 6.0, 0.5);
        // A cache-hungry task must go to machine 1 despite its CPU load.
        for _ in 0..10 {
            let mut probe = Scheduler::new(1.5, 7);
            probe.set_policy(PlacementPolicy::CacheAware);
            probe.register_machine(MachineId(0), 12, 12.0);
            probe.register_machine(MachineId(1), 12, 12.0);
            probe.commit(MachineId(0), JobId(9), SchedClass::Batch, 0.5, 11.0);
            probe.commit(MachineId(1), JobId(8), SchedClass::Batch, 6.0, 0.5);
            let m = probe.place(JobId(1), SchedClass::Batch, 1.0, 8.0).unwrap();
            assert_eq!(m, MachineId(1));
        }
        // The least-loaded policy would pick machine 0 (lower CPU load).
        let mut blind = Scheduler::new(1.5, 7);
        blind.register_machine(MachineId(0), 12, 12.0);
        blind.register_machine(MachineId(1), 12, 12.0);
        blind.commit(MachineId(0), JobId(9), SchedClass::Batch, 0.5, 11.0);
        blind.commit(MachineId(1), JobId(8), SchedClass::Batch, 6.0, 0.5);
        let mut picked0 = 0;
        for _ in 0..20 {
            let m = blind.place(JobId(1), SchedClass::Batch, 0.01, 8.0).unwrap();
            if m == MachineId(0) {
                picked0 += 1;
            }
        }
        assert!(
            picked0 > 0,
            "least-loaded sometimes piles onto the hot cache"
        );
    }
}
