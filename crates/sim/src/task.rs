//! Tasks: resource profiles, dynamic behaviour models, and tick outcomes.
//!
//! A task is one Linux process tree inside a cgroup. Its *resource profile*
//! captures the microarchitectural character the interference model needs
//! (cache footprint, solo miss rate, sensitivity to losing cache); its
//! *task model* supplies dynamic behaviour — time-varying CPU demand,
//! thread count, and reactions to throttling (lame-duck mode, abrupt exit).

use crate::job::TaskId;
use crate::time::{SimDuration, SimTime};
use cpi2_stats::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Microarchitectural character of a task, consumed by the interference
/// model each tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Cycles per instruction when running alone on the reference platform.
    pub base_cpi: f64,
    /// Cache working-set size in megabytes.
    pub cache_mb: f64,
    /// L3 misses per kilo-instruction when the working set fits in cache.
    pub mpki_solo: f64,
    /// How strongly the miss rate inflates when the task loses cache
    /// (0 = insensitive; 1 = proportional; >1 = super-linear).
    pub cache_sensitivity: f64,
    /// Log-normal sigma of multiplicative per-tick CPI noise.
    pub cpi_noise: f64,
}

impl ResourceProfile {
    /// A compute-bound profile: small footprint, low miss rate.
    pub fn compute_bound() -> Self {
        ResourceProfile {
            base_cpi: 0.9,
            cache_mb: 1.0,
            mpki_solo: 0.3,
            cache_sensitivity: 0.5,
            cpi_noise: 0.02,
        }
    }

    /// A cache-heavy serving profile: meaningful footprint, moderate misses.
    pub fn cache_heavy() -> Self {
        ResourceProfile {
            base_cpi: 1.4,
            cache_mb: 6.0,
            mpki_solo: 2.0,
            cache_sensitivity: 1.5,
            cpi_noise: 0.03,
        }
    }

    /// A streaming profile: touches lots of memory, little reuse — the
    /// classic antagonist shape.
    pub fn streaming() -> Self {
        ResourceProfile {
            base_cpi: 1.8,
            cache_mb: 24.0,
            mpki_solo: 8.0,
            cache_sensitivity: 0.2,
            cpi_noise: 0.04,
        }
    }

    /// Validates that all fields are finite and within sane ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base_cpi.is_finite() && self.base_cpi > 0.0) {
            return Err(format!("base_cpi={} must be positive", self.base_cpi));
        }
        if !(self.cache_mb.is_finite() && self.cache_mb >= 0.0) {
            return Err(format!("cache_mb={} must be non-negative", self.cache_mb));
        }
        if !(self.mpki_solo.is_finite() && self.mpki_solo >= 0.0) {
            return Err(format!("mpki_solo={} must be non-negative", self.mpki_solo));
        }
        if !(self.cache_sensitivity.is_finite() && self.cache_sensitivity >= 0.0) {
            return Err("cache_sensitivity must be non-negative".to_string());
        }
        if !(self.cpi_noise.is_finite() && self.cpi_noise >= 0.0) {
            return Err("cpi_noise must be non-negative".to_string());
        }
        Ok(())
    }
}

/// What a task wants from the machine this tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskDemand {
    /// CPU the task would consume unconstrained, in cores (CPU-sec/sec).
    pub cpu_want: f64,
    /// Number of runnable threads (Fig. 1b / Fig. 12b data).
    pub threads: u32,
}

/// What the machine actually delivered to a task over one tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickOutcome {
    /// CPU granted, in cores.
    pub cpu_granted: f64,
    /// True if bandwidth control (a hard cap) clipped the grant.
    pub capped: bool,
    /// Effective cycles per instruction this tick.
    pub cpi: f64,
    /// Instructions retired this tick.
    pub instructions: f64,
    /// L3 misses this tick.
    pub l3_misses: f64,
}

/// A task model's verdict after observing a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskAction {
    /// Keep running.
    Continue,
    /// Terminate this task (e.g. a MapReduce worker giving up under
    /// prolonged capping, §6.2).
    Exit,
}

/// Dynamic behaviour of one task.
///
/// Implementations live mostly in `cpi2-workloads`; the simulator calls
/// [`demand`](TaskModel::demand) before allocation each tick and
/// [`observe`](TaskModel::observe) after, letting the model adapt (enter
/// lame-duck mode, exit, change phase).
pub trait TaskModel: Send {
    /// Resource profile for this tick (may evolve over time).
    fn profile(&self) -> ResourceProfile;

    /// Demand for the tick starting at `now`.
    fn demand(&mut self, now: SimTime, dt: SimDuration, rng: &mut SimRng) -> TaskDemand;

    /// Observes the tick's outcome; returns whether to keep running.
    fn observe(&mut self, _now: SimTime, _outcome: &TickOutcome) -> TaskAction {
        TaskAction::Continue
    }

    /// Application-level transactions completed this tick, if the workload
    /// defines any (used by the Fig. 2 experiment). Default: none.
    fn transactions(&self, _outcome: &TickOutcome, _dt: SimDuration) -> Option<f64> {
        None
    }

    /// Application-level request latency for this tick, if defined (used by
    /// the Fig. 3/4 experiments). Default: none.
    fn request_latency_ms(&self, _outcome: &TickOutcome) -> Option<f64> {
        None
    }
}

/// The simplest task model: constant CPU demand and a fixed profile.
#[derive(Debug, Clone)]
pub struct ConstantLoad {
    /// Steady CPU demand in cores.
    pub cpu: f64,
    /// Fixed thread count.
    pub threads: u32,
    /// Fixed resource profile.
    pub profile: ResourceProfile,
}

impl ConstantLoad {
    /// Creates a constant-demand model.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation or `cpu` is negative.
    pub fn new(cpu: f64, threads: u32, profile: ResourceProfile) -> Self {
        assert!(cpu >= 0.0, "ConstantLoad: cpu must be non-negative");
        profile.validate().expect("valid profile");
        ConstantLoad {
            cpu,
            threads,
            profile,
        }
    }
}

impl TaskModel for ConstantLoad {
    fn profile(&self) -> ResourceProfile {
        self.profile
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        TaskDemand {
            cpu_want: self.cpu,
            threads: self.threads,
        }
    }
}

/// Handle pairing a task id with its boxed behaviour model.
pub struct TaskInstance {
    /// Task identity.
    pub id: TaskId,
    /// Behaviour model.
    pub model: Box<dyn TaskModel>,
}

impl std::fmt::Debug for TaskInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskInstance")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    #[test]
    fn canned_profiles_validate() {
        ResourceProfile::compute_bound().validate().unwrap();
        ResourceProfile::cache_heavy().validate().unwrap();
        ResourceProfile::streaming().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_cpi() {
        let mut p = ResourceProfile::compute_bound();
        p.base_cpi = -1.0;
        assert!(p.validate().is_err());
        p.base_cpi = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn constant_load_demand() {
        let mut m = ConstantLoad::new(1.5, 8, ResourceProfile::compute_bound());
        let mut rng = SimRng::new(1);
        let d = m.demand(SimTime::ZERO, SimDuration::from_secs(1), &mut rng);
        assert_eq!(d.cpu_want, 1.5);
        assert_eq!(d.threads, 8);
    }

    #[test]
    fn default_observe_continues() {
        let mut m = ConstantLoad::new(1.0, 1, ResourceProfile::compute_bound());
        let out = TickOutcome {
            cpu_granted: 1.0,
            capped: false,
            cpi: 1.0,
            instructions: 1e9,
            l3_misses: 1e5,
        };
        assert_eq!(m.observe(SimTime::ZERO, &out), TaskAction::Continue);
        assert!(m.transactions(&out, SimDuration::from_secs(1)).is_none());
        assert!(m.request_latency_ms(&out).is_none());
    }

    #[test]
    fn task_instance_debug_shows_id() {
        let t = TaskInstance {
            id: TaskId {
                job: JobId(1),
                index: 2,
            },
            model: Box::new(ConstantLoad::new(1.0, 1, ResourceProfile::compute_bound())),
        };
        assert!(format!("{t:?}").contains("JobId(1)"));
    }
}
