//! Simulated time: microseconds since the simulation epoch.
//!
//! The paper's data records carry `int64 timestamp; // microsec since epoch`
//! (§3.1); we use the same representation for simulated wall-clock time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds in one second.
pub const US_PER_SEC: i64 = 1_000_000;
/// Microseconds in one minute.
pub const US_PER_MIN: i64 = 60 * US_PER_SEC;
/// Microseconds in one hour.
pub const US_PER_HOUR: i64 = 60 * US_PER_MIN;
/// Microseconds in one day.
pub const US_PER_DAY: i64 = 24 * US_PER_HOUR;

/// A point in simulated time (µs since the simulation epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub i64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(s: i64) -> Self {
        SimTime(s * US_PER_SEC)
    }

    /// Builds a time from whole minutes.
    pub fn from_mins(m: i64) -> Self {
        SimTime(m * US_PER_MIN)
    }

    /// Builds a time from whole hours.
    pub fn from_hours(h: i64) -> Self {
        SimTime(h * US_PER_HOUR)
    }

    /// Raw microseconds since epoch.
    pub fn as_us(self) -> i64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / US_PER_SEC as f64
    }

    /// Time of day as fractional hours in `[0, 24)`.
    pub fn hour_of_day(self) -> f64 {
        self.0.rem_euclid(US_PER_DAY) as f64 / US_PER_HOUR as f64
    }

    /// Day number since epoch (floor).
    pub fn day(self) -> i64 {
        self.0.div_euclid(US_PER_DAY)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0.div_euclid(US_PER_SEC);
        let (d, rem) = (total_secs.div_euclid(86_400), total_secs.rem_euclid(86_400));
        let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
        write!(f, "d{d} {h:02}:{m:02}:{s:02}")
    }
}

/// A span of simulated time (µs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub i64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole seconds.
    pub fn from_secs(s: i64) -> Self {
        SimDuration(s * US_PER_SEC)
    }

    /// Builds a span from whole minutes.
    pub fn from_mins(m: i64) -> Self {
        SimDuration(m * US_PER_MIN)
    }

    /// Builds a span from whole hours.
    pub fn from_hours(h: i64) -> Self {
        SimDuration(h * US_PER_HOUR)
    }

    /// Raw microseconds.
    pub fn as_us(self) -> i64 {
        self.0
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / US_PER_SEC as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_consistent() {
        assert_eq!(SimTime::from_secs(60), SimTime::from_mins(1));
        assert_eq!(SimTime::from_mins(60), SimTime::from_hours(1));
        assert_eq!(SimDuration::from_hours(24).as_us(), US_PER_DAY);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(t - SimDuration::from_secs(15), SimTime::ZERO);
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_hours(25);
        assert!((t.hour_of_day() - 1.0).abs() < 1e-12);
        assert_eq!(t.day(), 1);
    }

    #[test]
    fn hour_of_day_fractional() {
        let t = SimTime::from_mins(90);
        assert!((t.hour_of_day() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_hours(26) + SimDuration::from_secs(61);
        assert_eq!(t.to_string(), "d1 02:01:01");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_mins(1) > SimDuration::from_secs(59));
    }
}
