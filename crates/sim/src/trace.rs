//! Simulation event trace.
//!
//! A bounded, append-only record of cluster-level events (placements,
//! exits, kills, caps). The CPI² evaluation harness reads it to align
//! detection decisions with simulator ground truth.

use crate::job::{JobId, TaskId};
use crate::machine::MachineId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Kind of traced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job was submitted.
    JobSubmitted {
        /// The job.
        job: JobId,
        /// Its name.
        name: String,
    },
    /// A task was placed on a machine.
    TaskPlaced {
        /// The task.
        task: TaskId,
        /// Where.
        machine: MachineId,
    },
    /// A task exited of its own accord.
    TaskExited {
        /// The task.
        task: TaskId,
        /// Where it was running.
        machine: MachineId,
        /// Whether it was hard-capped when it exited.
        capped: bool,
    },
    /// A task was killed by an operator or policy.
    TaskKilled {
        /// The task.
        task: TaskId,
        /// Where it was running.
        machine: MachineId,
    },
    /// A task was migrated (killed and restarted elsewhere).
    TaskMigrated {
        /// The task.
        task: TaskId,
        /// Source machine.
        from: MachineId,
        /// Destination machine.
        to: MachineId,
    },
    /// A CPU hard cap was applied to a task.
    CapApplied {
        /// The capped task.
        task: TaskId,
        /// Cap rate in CPU-sec/sec.
        cpu_rate: f64,
        /// Cap expiry.
        until: SimTime,
    },
    /// A machine crashed and rebooted, killing every resident task.
    MachineCrashed {
        /// The machine that went down.
        machine: MachineId,
        /// How many resident tasks died with it.
        tasks_lost: u32,
    },
    /// Free-form annotation.
    Note(String),
}

/// One timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// Bounded in-memory event trace.
#[derive(Debug)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
}

impl Trace {
    /// Creates a trace that retains at most `capacity` entries (oldest
    /// evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Trace: capacity must be positive");
        Trace {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Appends an event.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { at, event });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new(10);
        t.record(SimTime::from_secs(1), TraceEvent::Note("a".into()));
        t.record(SimTime::from_secs(2), TraceEvent::Note("b".into()));
        let v: Vec<_> = t.entries().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.record(SimTime::from_secs(i), TraceEvent::Note(format!("{i}")));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries().next().unwrap().at, SimTime::from_secs(3));
    }

    #[test]
    fn empty_checks() {
        let t = Trace::new(1);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
