//! Property-based tests for the cluster simulator's invariants.

use cpi2_sim::interference::{
    self, ComputeScratch, ContentionSummary, InterferenceParams, TaskInterference, TaskLoad,
};
use cpi2_sim::{
    Cgroup, ConstantLoad, JobId, Machine, MachineId, Platform, Priority, ResourceProfile,
    SchedClass, Scheduler, SimDuration, SimTime, TaskId, TaskInstance,
};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = ResourceProfile> {
    (0.5..3.0f64, 0.1..40.0f64, 0.0..15.0f64, 0.0..2.0f64).prop_map(
        |(base_cpi, cache_mb, mpki_solo, sens)| ResourceProfile {
            base_cpi,
            cache_mb,
            mpki_solo,
            cache_sensitivity: sens,
            cpi_noise: 0.0,
        },
    )
}

fn loads_strategy(n: usize) -> impl Strategy<Value = Vec<TaskLoad>> {
    prop::collection::vec(
        (0.0..8.0f64, profile_strategy())
            .prop_map(|(activity, profile)| TaskLoad { activity, profile }),
        1..n,
    )
}

proptest! {
    #[test]
    fn interference_cpi_never_below_base(loads in loads_strategy(12)) {
        let platform = Platform::westmere();
        let (effects, summary) =
            interference::compute(&platform, &loads, &InterferenceParams::default());
        for (l, e) in loads.iter().zip(&effects) {
            let base = l.profile.base_cpi * platform.cpi_factor;
            prop_assert!(e.cpi >= base - 1e-9, "cpi {} below base {base}", e.cpi);
            prop_assert!(e.cpi.is_finite());
            prop_assert!(e.mpki >= l.profile.mpki_solo - 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&e.cache_retained));
        }
        prop_assert!((0.0..=0.95 + 1e-9).contains(&summary.mem_utilization));
    }

    #[test]
    fn interference_adding_antagonist_never_helps(loads in loads_strategy(8)) {
        let platform = Platform::westmere();
        let params = InterferenceParams::default();
        let (before, _) = interference::compute(&platform, &loads, &params);
        let mut with_extra = loads.clone();
        with_extra.push(TaskLoad {
            activity: 6.0,
            profile: ResourceProfile::streaming(),
        });
        let (after, _) = interference::compute(&platform, &with_extra, &params);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(a.cpi >= b.cpi - 1e-9, "antagonist lowered CPI {} -> {}", b.cpi, a.cpi);
        }
    }

    #[test]
    fn cgroup_clamp_never_exceeds_request_or_cap(
        want in 0.0..32.0f64,
        cap in 0.001..4.0f64,
        limit in prop::option::of(0.1..16.0f64),
    ) {
        let mut g = Cgroup::new(limit);
        g.apply_hard_cap(cap, SimTime::from_mins(5));
        let got = g.clamp_cpu(want, SimTime::ZERO, SimDuration::from_secs(1));
        prop_assert!(got <= want + 1e-12);
        prop_assert!(got <= cap + 1e-12);
        if let Some(l) = limit {
            prop_assert!(got <= l + 1e-12);
        }
    }

    #[test]
    fn machine_never_over_allocates(demands in prop::collection::vec((0.0..6.0f64, 0..3u8), 1..20)) {
        let platform = Platform::westmere();
        let cores = platform.cores as f64;
        let mut m = Machine::new(MachineId(0), platform, 7);
        for (i, &(cpu, class)) in demands.iter().enumerate() {
            let class = match class {
                0 => SchedClass::LatencySensitive,
                1 => SchedClass::Batch,
                _ => SchedClass::BestEffort,
            };
            m.add_task(
                TaskInstance {
                    id: TaskId { job: JobId(i as u32), index: 0 },
                    model: Box::new(ConstantLoad::new(cpu, 2, ResourceProfile::compute_bound())),
                },
                format!("j{i}"),
                class,
                Priority::NonProduction,
                None,
            );
        }
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut Vec::new());
        let granted: f64 = m
            .tasks()
            .map(|t| t.task().last_outcome().map(|o| o.cpu_granted).unwrap_or(0.0))
            .sum();
        prop_assert!(granted <= cores + 1e-6, "granted {granted} > cores {cores}");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m.utilization()));
        // No task got more than it asked for.
        for (t, &(cpu, _)) in m.tasks().zip(&demands) {
            let got = t.last_outcome().unwrap().cpu_granted;
            prop_assert!(got <= cpu * 1.0 + 1e-9);
        }
    }

    #[test]
    fn scheduler_ls_reservations_bounded(requests in prop::collection::vec(0.1..4.0f64, 1..40)) {
        let mut s = Scheduler::new(1.5, 1);
        for i in 0..4 {
            s.register_machine(MachineId(i), 12, 12.0);
        }
        for (i, &cpu) in requests.iter().enumerate() {
            let _ = s.place(JobId(i as u32), SchedClass::LatencySensitive, cpu, 1.0);
        }
        // Admission control invariant: per-machine LS reservations ≤ cores.
        for i in 0..4 {
            let (ls, _) = s.reservations(MachineId(i)).unwrap();
            prop_assert!(ls <= 12.0 + 1e-9, "machine {i} oversubscribed: {ls}");
        }
    }

    #[test]
    fn scheduler_batch_overcommit_bounded(requests in prop::collection::vec(0.1..4.0f64, 1..60)) {
        let overcommit = 1.5;
        let mut s = Scheduler::new(overcommit, 2);
        for i in 0..4 {
            s.register_machine(MachineId(i), 12, 12.0);
        }
        for (i, &cpu) in requests.iter().enumerate() {
            let _ = s.place(JobId(i as u32), SchedClass::Batch, cpu, 1.0);
        }
        for i in 0..4 {
            let (ls, batch) = s.reservations(MachineId(i)).unwrap();
            prop_assert!(ls + batch <= 12.0 * overcommit + 1e-9);
        }
    }

    #[test]
    fn cfs_granted_never_exceeds_bandwidth_quota(
        limit in prop::option::of(0.05..8.0f64),
        caps in prop::collection::vec(prop::option::of((0.01..4.0f64, 1..40i64)), 1..10),
        demands in prop::collection::vec(0.0..16.0f64, 1..60),
    ) {
        // CFS bandwidth accounting under an arbitrary cap/demand script:
        // per tick, granted CPU-time never exceeds quota x elapsed
        // periods, and the throttle counter is monotone with per-tick
        // increments bounded by the tick itself.
        let mut g = Cgroup::new(limit);
        let dt = SimDuration::from_secs(1);
        let mut prev_throttled = 0i64;
        for (i, &want) in demands.iter().enumerate() {
            let now = SimTime::from_secs(i as i64);
            match caps[i % caps.len()] {
                Some((rate, dur_s)) => {
                    g.apply_hard_cap(rate, now + SimDuration::from_secs(dur_s));
                }
                None => g.remove_hard_cap(),
            }
            let got = g.clamp_cpu(want, now, dt);
            prop_assert!(got <= want + 1e-12, "granted {got} > requested {want}");
            let rate = g.effective_rate(now);
            if let Some(rate) = rate {
                prop_assert!(got <= rate + 1e-12, "granted {got} > rate limit {rate}");
                let quota = g.quota_us(now).expect("rate-limited cgroup has a quota");
                // quota_us really is rate x period (within truncation).
                prop_assert!(
                    (quota as f64 - rate * g.period().as_us() as f64).abs() <= 1.0,
                    "quota {quota} inconsistent with rate {rate}"
                );
                // Granted CPU-µs over the tick stays within quota x periods.
                let periods = dt.as_us() as f64 / g.period().as_us() as f64;
                prop_assert!(
                    got * dt.as_us() as f64 <= (quota + 1) as f64 * periods + 1e-6,
                    "granted {got} CPU-sec/sec exceeds quota {quota}µs x {periods} periods"
                );
            }
            let th = g.throttled_us();
            prop_assert!(th >= prev_throttled, "throttle counter went backwards");
            prop_assert!(
                th - prev_throttled <= dt.as_us(),
                "throttled {}µs in a {}µs tick", th - prev_throttled, dt.as_us()
            );
            if rate.is_none() || rate.is_some_and(|r| want <= r) {
                prop_assert_eq!(th, prev_throttled, "throttled although bandwidth sufficed");
            }
            prev_throttled = th;
        }
    }

    #[test]
    fn cgroup_charge_keeps_counters_monotone(
        blocks in prop::collection::vec(
            (0.0..1e9f64, 0.0..1e9f64, 0.0..1e6f64, 0..1_000_000u64, 0.0..1e7f64),
            1..40,
        ),
    ) {
        let mut g = Cgroup::new(None);
        let mut prev = *g.counters();
        for &(cycles, instructions, l3, switches, cpu_us) in &blocks {
            g.charge(&cpi2_sim::CounterBlock {
                cycles,
                instructions,
                l2_misses: l3 * 2.0,
                l3_misses: l3,
                mem_lines: l3,
                context_switches: switches,
                cpu_time_us: cpu_us,
            });
            let c = *g.counters();
            prop_assert!(c.cycles >= prev.cycles);
            prop_assert!(c.instructions >= prev.instructions);
            prop_assert!(c.l3_misses >= prev.l3_misses);
            prop_assert!(c.context_switches >= prev.context_switches);
            prop_assert!(c.cpu_time_us >= prev.cpu_time_us);
            // The delta view agrees with what was just charged.
            let d = c.delta(&prev);
            prop_assert!((d.cycles - cycles).abs() < 1e-3);
            prop_assert!((d.instructions - instructions).abs() < 1e-3);
            prev = c;
        }
    }

    #[test]
    fn counters_are_monotonic(cpus in prop::collection::vec(0.1..3.0f64, 1..6), ticks in 1..30i64) {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 3);
        for (i, &cpu) in cpus.iter().enumerate() {
            m.add_task(
                TaskInstance {
                    id: TaskId { job: JobId(i as u32), index: 0 },
                    model: Box::new(ConstantLoad::new(cpu, 2, ResourceProfile::cache_heavy())),
                },
                format!("j{i}"),
                SchedClass::Batch,
                Priority::NonProduction,
                None,
            );
        }
        let mut last: Vec<cpi2_sim::CounterBlock> =
            m.tasks().map(|t| *t.cgroup.counters()).collect();
        for tick in 0..ticks {
            m.tick(SimTime::from_secs(tick), SimDuration::from_secs(1), &mut Vec::new());
            for (t, prev) in m.tasks().zip(&last) {
                let c = t.cgroup.counters();
                prop_assert!(c.cycles >= prev.cycles);
                prop_assert!(c.instructions >= prev.instructions);
                prop_assert!(c.l3_misses >= prev.l3_misses);
                prop_assert!(c.cpu_time_us >= prev.cpu_time_us);
            }
            last = m.tasks().map(|t| *t.cgroup.counters()).collect();
        }
    }
}

// --- compute_into vs the pre-scratch reference ---------------------------

/// The interference model as it was before the allocation-free refactor,
/// pinned verbatim: per-call `Vec` storage, identical arithmetic. The
/// refactored `compute_into` must match it bit for bit.
fn reference_compute(
    platform: &Platform,
    loads: &[TaskLoad],
    params: &InterferenceParams,
) -> (Vec<TaskInterference>, ContentionSummary) {
    let hot: Vec<f64> = loads
        .iter()
        .map(|l| l.profile.cache_mb * (1.0 - (-l.activity).exp()))
        .collect();
    let demand: f64 = hot.iter().sum();
    let retained_global = if demand <= platform.l3_mb || demand == 0.0 {
        1.0
    } else {
        platform.l3_mb / demand
    };

    let mpki: Vec<f64> = loads
        .iter()
        .map(|l| {
            let loss = 1.0 - retained_global;
            l.profile.mpki_solo * (1.0 + l.profile.cache_sensitivity * loss * params.cache_slope)
        })
        .collect();

    let mut cpi: Vec<f64> = loads
        .iter()
        .map(|l| l.profile.base_cpi * platform.cpi_factor)
        .collect();
    let mut rho = 0.0;
    for _ in 0..params.iterations {
        let glines: f64 = loads
            .iter()
            .zip(&cpi)
            .zip(&mpki)
            .map(|((l, &c), &m)| {
                let instr_per_sec = l.activity * platform.clock_hz / c;
                instr_per_sec * m / 1000.0 / 1e9
            })
            .sum();
        rho = (glines / platform.mem_bw_glines).min(params.rho_max);
        let queue_mult = 1.0 + params.queue_beta * rho / (1.0 - rho);
        let eff_penalty = platform.miss_penalty_cycles * queue_mult;
        for ((l, c), &m) in loads.iter().zip(cpi.iter_mut()).zip(&mpki) {
            let extra_mpki = (m - l.profile.mpki_solo).max(0.0);
            let extra = (extra_mpki * eff_penalty
                + l.profile.mpki_solo * platform.miss_penalty_cycles * (queue_mult - 1.0))
                / 1000.0;
            let target = l.profile.base_cpi * platform.cpi_factor + extra;
            *c += params.damping * (target - *c);
        }
    }

    let out = loads
        .iter()
        .zip(&cpi)
        .zip(&mpki)
        .map(|((_, &c), &m)| TaskInterference {
            cpi: c,
            mpki: m,
            cache_retained: retained_global,
        })
        .collect();
    (
        out,
        ContentionSummary {
            cache_demand_mb: demand,
            mem_utilization: rho,
        },
    )
}

fn assert_bits_equal(
    got: &[TaskInterference],
    got_sum: &ContentionSummary,
    want: &[TaskInterference],
    want_sum: &ContentionSummary,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(
            g.cpi.to_bits(),
            w.cpi.to_bits(),
            "cpi {} vs {}",
            g.cpi,
            w.cpi
        );
        prop_assert_eq!(g.mpki.to_bits(), w.mpki.to_bits());
        prop_assert_eq!(g.cache_retained.to_bits(), w.cache_retained.to_bits());
    }
    prop_assert_eq!(
        got_sum.cache_demand_mb.to_bits(),
        want_sum.cache_demand_mb.to_bits()
    );
    prop_assert_eq!(
        got_sum.mem_utilization.to_bits(),
        want_sum.mem_utilization.to_bits()
    );
    Ok(())
}

proptest! {
    #[test]
    fn compute_into_bit_identical_to_reference(
        loads in loads_strategy(16),
        idle_flag in 0..2u8,
    ) {
        let mut loads = loads;
        // Half the cases exercise the zero-total-activity fast path.
        if idle_flag == 1 {
            for l in &mut loads {
                l.activity = 0.0;
            }
        }
        let params = InterferenceParams::default();
        for platform in [Platform::westmere(), Platform::sandy_bridge()] {
            let (want, want_sum) = reference_compute(&platform, &loads, &params);

            // Allocating wrapper.
            let (got, got_sum) = interference::compute(&platform, &loads, &params);
            assert_bits_equal(&got, &got_sum, &want, &want_sum)?;

            // Caller-owned buffers, deliberately dirtied by a different
            // prior computation: reuse must not leak state between calls.
            let mut out = Vec::new();
            let mut scratch = ComputeScratch::default();
            let decoys = [
                TaskLoad { activity: 6.0, profile: ResourceProfile::streaming() },
                TaskLoad { activity: 3.0, profile: ResourceProfile::cache_heavy() },
            ];
            interference::compute_into(&platform, &decoys, &params, &mut out, &mut scratch);
            let got_sum2 =
                interference::compute_into(&platform, &loads, &params, &mut out, &mut scratch);
            assert_bits_equal(&out, &got_sum2, &want, &want_sum)?;
        }
    }
}
