//! Correlation coefficients and simple linear regression.
//!
//! The paper quotes Pearson correlation coefficients throughout its
//! motivation (Figs. 2–4: r ≈ 0.97 for TPS/IPS and latency/CPI) and for the
//! L3-miss analysis of Fig. 15(c) (r ≈ 0.87); this module computes them.
//! Note the *antagonist* correlation of §4.2 is a different, bespoke score —
//! it lives in `cpi2-core`.

/// Pearson product-moment correlation of two equal-length series.
///
/// Returns `None` if the series have different lengths, fewer than two
/// points, or either has zero variance.
///
/// # Examples
///
/// ```
/// use cpi2_stats::correlation::pearson;
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation (Pearson on ranks, average ranks for ties).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Assigns fractional ranks (1-based, ties get the average rank).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Result of an ordinary-least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation between x and y.
    pub r: f64,
}

/// Ordinary least squares fit of `y` on `x`.
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    let r = pearson(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx) = (0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
    }
    let slope = sxy / sxx;
    Some(LinearFit {
        slope,
        intercept: my - slope * mx,
        r,
    })
}

/// Autocorrelation of a series at the given lag.
///
/// Returns `None` if the series is shorter than `lag + 2` or has zero
/// variance. Used to check the diurnal period in the Fig. 5 experiment.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    if xs.len() < lag + 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
    if var <= 0.0 {
        return None;
    }
    let cov: f64 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum();
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_lines() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let up: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn pearson_length_mismatch_is_none() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        // Orthogonal-ish pattern.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.5, "r={r}");
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 4.0).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.5).abs() < 1e-10);
        assert!((f.intercept + 4.0).abs() < 1e-8);
        assert!((f.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_periodic_signal() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
            .collect();
        let at_period = autocorrelation(&xs, 24).unwrap();
        let at_half = autocorrelation(&xs, 12).unwrap();
        assert!(at_period > 0.8, "at_period={at_period}");
        assert!(at_half < -0.8, "at_half={at_half}");
    }

    #[test]
    fn autocorrelation_too_short_is_none() {
        assert!(autocorrelation(&[1.0, 2.0], 5).is_none());
    }
}
