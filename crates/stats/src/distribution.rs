//! Continuous probability distributions with pdf/cdf/quantile.
//!
//! The paper fits the observed per-job CPI distribution against normal,
//! log-normal, Gamma and generalized-extreme-value (GEV) candidates and
//! reports that GEV fits best (Fig. 7, `GEV(1.73, 0.133, −0.0534)`). These
//! four distributions are implemented here from scratch.

use crate::special::{ln_gamma, lower_inc_gamma_regularized, norm_cdf, norm_quantile};
use serde::{Deserialize, Serialize};

/// Common interface for the continuous distributions used in fitting.
pub trait ContinuousDist {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative probability `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;
    /// Inverse CDF for `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;
    /// Distribution mean (may be infinite for heavy-tailed shapes).
    fn mean(&self) -> f64;
    /// Distribution variance (may be infinite).
    fn variance(&self) -> f64;
    /// Log density, defaulting to `ln(pdf)`; `-inf` off support.
    fn ln_pdf(&self, x: f64) -> f64 {
        let p = self.pdf(x);
        if p > 0.0 {
            p.ln()
        } else {
            f64::NEG_INFINITY
        }
    }
}

/// Normal distribution `N(mean, stddev²)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Normal {
    /// Location (mean).
    pub mean: f64,
    /// Scale (standard deviation), strictly positive.
    pub stddev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `stddev <= 0` or parameters are non-finite.
    pub fn new(mean: f64, stddev: f64) -> Self {
        assert!(
            mean.is_finite() && stddev.is_finite() && stddev > 0.0,
            "Normal: invalid parameters mean={mean} stddev={stddev}"
        );
        Normal { mean, stddev }
    }
}

impl ContinuousDist for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.stddev;
        (-0.5 * z * z).exp() / (self.stddev * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mean) / self.stddev)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.stddev * norm_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.stddev * self.stddev
    }
}

/// Log-normal distribution: `ln X ~ N(mu, sigma²)`, support `x > 0`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`, strictly positive.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma > 0.0,
            "LogNormal: invalid parameters mu={mu} sigma={sigma}"
        );
        LogNormal { mu, sigma }
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            norm_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * norm_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

/// Gamma distribution with shape `k` and scale `theta`, support `x > 0`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Gamma {
    /// Shape parameter, strictly positive.
    pub shape: f64,
    /// Scale parameter, strictly positive.
    pub scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0,
            "Gamma: invalid parameters shape={shape} scale={scale}"
        );
        Gamma { shape, scale }
    }
}

impl ContinuousDist for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            lower_inc_gamma_regularized(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "Gamma::quantile: p={p} out of (0,1)");
        // Bisection on the CDF: robust and sufficient for fitting use.
        let mut lo = 0.0;
        let mut hi = self.mean() + 20.0 * self.variance().sqrt().max(self.scale);
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// Generalized extreme value distribution `GEV(mu, sigma, xi)`.
///
/// `xi > 0` is the Fréchet (heavy right tail) domain, `xi < 0` Weibull
/// (bounded right tail), `xi = 0` Gumbel. The paper's best fit for
/// web-search CPI is `GEV(1.73, 0.133, −0.0534)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Gev {
    /// Location parameter.
    pub mu: f64,
    /// Scale parameter, strictly positive.
    pub sigma: f64,
    /// Shape parameter.
    pub xi: f64,
}

impl Gev {
    /// Creates a GEV distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64, xi: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && xi.is_finite() && sigma > 0.0,
            "Gev: invalid parameters mu={mu} sigma={sigma} xi={xi}"
        );
        Gev { mu, sigma, xi }
    }

    /// The `t(x)` auxiliary: `(1 + xi·z)^(−1/xi)` or `exp(−z)` for `xi = 0`.
    /// Returns `None` off the support.
    fn t(&self, x: f64) -> Option<f64> {
        let z = (x - self.mu) / self.sigma;
        if self.xi.abs() < 1e-12 {
            Some((-z).exp())
        } else {
            let base = 1.0 + self.xi * z;
            if base <= 0.0 {
                None
            } else {
                Some(base.powf(-1.0 / self.xi))
            }
        }
    }
}

impl ContinuousDist for Gev {
    fn pdf(&self, x: f64) -> f64 {
        match self.t(x) {
            Some(t) => t.powf(self.xi + 1.0) * (-t).exp() / self.sigma,
            None => 0.0,
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        match self.t(x) {
            Some(t) => (-t).exp(),
            None => {
                // Below support for xi > 0 ⇒ 0; above support for xi < 0 ⇒ 1.
                let z = (x - self.mu) / self.sigma;
                if self.xi > 0.0 && z < -1.0 / self.xi {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "Gev::quantile: p={p} out of (0,1)");
        let y = -p.ln(); // y > 0.
        if self.xi.abs() < 1e-12 {
            self.mu - self.sigma * y.ln()
        } else {
            self.mu + self.sigma * (y.powf(-self.xi) - 1.0) / self.xi
        }
    }

    fn mean(&self) -> f64 {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        if self.xi.abs() < 1e-12 {
            self.mu + self.sigma * EULER_GAMMA
        } else if self.xi < 1.0 {
            self.mu + self.sigma * (crate::special::gamma(1.0 - self.xi) - 1.0) / self.xi
        } else {
            f64::INFINITY
        }
    }

    fn variance(&self) -> f64 {
        if self.xi.abs() < 1e-12 {
            self.sigma * self.sigma * std::f64::consts::PI.powi(2) / 6.0
        } else if self.xi < 0.5 {
            let g1 = crate::special::gamma(1.0 - self.xi);
            let g2 = crate::special::gamma(1.0 - 2.0 * self.xi);
            self.sigma * self.sigma * (g2 - g1 * g1) / (self.xi * self.xi)
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cdf_quantile_roundtrip<D: ContinuousDist>(d: &D, tol: f64) {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = d.quantile(p);
            let back = d.cdf(x);
            assert!((back - p).abs() < tol, "p={p} x={x} back={back}");
        }
    }

    fn check_pdf_integrates_cdf<D: ContinuousDist>(d: &D, lo: f64, hi: f64, tol: f64) {
        // Trapezoid integration of the pdf should match the CDF difference.
        let n = 20_000;
        let h = (hi - lo) / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            let a = lo + i as f64 * h;
            integral += 0.5 * (d.pdf(a) + d.pdf(a + h)) * h;
        }
        let expect = d.cdf(hi) - d.cdf(lo);
        assert!(
            (integral - expect).abs() < tol,
            "integral={integral} expect={expect}"
        );
    }

    #[test]
    fn normal_roundtrip_and_density() {
        let d = Normal::new(1.8, 0.16);
        check_cdf_quantile_roundtrip(&d, 1e-10);
        check_pdf_integrates_cdf(&d, 1.0, 2.6, 1e-6);
        assert!((d.mean() - 1.8).abs() < 1e-12);
        assert!((d.variance() - 0.0256).abs() < 1e-12);
    }

    #[test]
    fn lognormal_roundtrip_and_moments() {
        let d = LogNormal::new(0.5, 0.3);
        check_cdf_quantile_roundtrip(&d, 1e-10);
        check_pdf_integrates_cdf(&d, 0.01, 10.0, 1e-5);
        let expect_mean = (0.5f64 + 0.045).exp();
        assert!((d.mean() - expect_mean).abs() < 1e-10);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn gamma_roundtrip_and_moments() {
        let d = Gamma::new(2.5, 1.3);
        check_cdf_quantile_roundtrip(&d, 1e-9);
        check_pdf_integrates_cdf(&d, 0.001, 30.0, 1e-5);
        assert!((d.mean() - 3.25).abs() < 1e-12);
        assert!((d.variance() - 2.5 * 1.69).abs() < 1e-10);
    }

    #[test]
    fn gamma_exponential_special_case() {
        // Gamma(1, θ) is Exponential(1/θ).
        let d = Gamma::new(1.0, 2.0);
        assert!((d.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn gev_paper_fit_roundtrip() {
        // The paper's Fig. 7 fit.
        let d = Gev::new(1.73, 0.133, -0.0534);
        check_cdf_quantile_roundtrip(&d, 1e-10);
        check_pdf_integrates_cdf(&d, 1.0, 3.5, 1e-6);
        // Mean should be near the observed 1.8.
        assert!((d.mean() - 1.8).abs() < 0.05, "mean={}", d.mean());
    }

    #[test]
    fn gev_gumbel_limit() {
        let d = Gev::new(0.0, 1.0, 0.0);
        // Gumbel CDF at 0 is exp(−1).
        assert!((d.cdf(0.0) - (-1.0f64).exp()).abs() < 1e-12);
        check_cdf_quantile_roundtrip(&d, 1e-10);
    }

    #[test]
    fn gev_support_bounds() {
        // xi < 0 has a finite right endpoint mu − sigma/xi.
        let d = Gev::new(0.0, 1.0, -0.5);
        let upper = 2.0;
        assert_eq!(d.pdf(upper + 0.1), 0.0);
        assert_eq!(d.cdf(upper + 0.1), 1.0);
        // xi > 0 has a finite left endpoint.
        let d = Gev::new(0.0, 1.0, 0.5);
        let lower = -2.0;
        assert_eq!(d.pdf(lower - 0.1), 0.0);
        assert_eq!(d.cdf(lower - 0.1), 0.0);
    }

    #[test]
    fn gev_skewness_direction() {
        // For small |xi|, the GEV is right-skewed: mean > median.
        let d = Gev::new(1.73, 0.133, -0.0534);
        assert!(d.mean() > d.quantile(0.5));
    }

    #[test]
    #[should_panic]
    fn normal_rejects_bad_sigma() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn gev_rejects_bad_sigma() {
        Gev::new(0.0, -1.0, 0.0);
    }
}
