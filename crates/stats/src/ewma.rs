//! Exponential age-weighting for historical data.
//!
//! CPI² incorporates prior runs of a job by "multiplying the CPI value from
//! the previous day by about 0.9 before averaging it with the most recent
//! day's data" (§3.1). [`AgeWeighted`] implements exactly that fold, and
//! [`Ewma`] is the continuous analogue used for smoothed gauges.

use serde::{Deserialize, Serialize};

/// Classic exponentially weighted moving average.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "Ewma: alpha={alpha} must be in (0,1]"
        );
        Ewma { alpha, value: None }
    }

    /// Folds in one observation and returns the new smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current smoothed value, if any observation has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Resets to the unseeded state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Day-over-day age-weighted aggregate of a (mean, stddev, weight) spec.
///
/// Each day's fold discounts all history by `decay` (the paper's ≈0.9) and
/// averages it with the new day's statistics, weighted by sample counts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct AgeWeighted {
    mean: f64,
    var: f64,
    weight: f64,
}

impl AgeWeighted {
    /// Creates an empty history.
    pub fn new() -> Self {
        AgeWeighted::default()
    }

    /// Folds in one day of data.
    ///
    /// `decay` discounts existing history (0.9 in the paper); `day_weight`
    /// is typically the day's sample count.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `[0, 1]` or `day_weight` is negative.
    pub fn fold_day(&mut self, day_mean: f64, day_stddev: f64, day_weight: f64, decay: f64) {
        assert!((0.0..=1.0).contains(&decay), "decay={decay} out of [0,1]");
        assert!(day_weight >= 0.0, "day_weight must be non-negative");
        let old_w = self.weight * decay;
        let total = old_w + day_weight;
        if total <= 0.0 {
            return;
        }
        let day_var = day_stddev * day_stddev;
        // Weighted pooling of means and (between+within) variance.
        let new_mean = (self.mean * old_w + day_mean * day_weight) / total;
        let new_var = (old_w * (self.var + (self.mean - new_mean).powi(2))
            + day_weight * (day_var + (day_mean - new_mean).powi(2)))
            / total;
        self.mean = new_mean;
        self.var = new_var;
        self.weight = total;
    }

    /// Age-weighted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Age-weighted standard deviation.
    pub fn stddev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Effective weight (discounted sample mass).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// True if no day has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.weight == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_value_passthrough() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.update(5.0), 5.0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.5);
        for _ in 0..50 {
            e.update(2.0);
        }
        assert!((e.value().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        assert_eq!(e.update(9.0), 9.0);
    }

    #[test]
    fn ewma_reset() {
        let mut e = Ewma::new(0.2);
        e.update(3.0);
        e.reset();
        assert!(e.value().is_none());
        assert_eq!(e.update(7.0), 7.0);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn age_weighted_single_day_identity() {
        let mut a = AgeWeighted::new();
        a.fold_day(1.8, 0.16, 1000.0, 0.9);
        assert!((a.mean() - 1.8).abs() < 1e-12);
        assert!((a.stddev() - 0.16).abs() < 1e-12);
        assert!((a.weight() - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn age_weighted_recent_day_dominates_over_time() {
        let mut a = AgeWeighted::new();
        // Ten days at CPI 1.0, then ten at CPI 2.0: estimate should end
        // much closer to 2.0 than the plain average.
        for _ in 0..10 {
            a.fold_day(1.0, 0.1, 100.0, 0.9);
        }
        for _ in 0..10 {
            a.fold_day(2.0, 0.1, 100.0, 0.9);
        }
        assert!(a.mean() > 1.6, "mean={}", a.mean());
    }

    #[test]
    fn age_weighted_equal_days_stable() {
        let mut a = AgeWeighted::new();
        for _ in 0..100 {
            a.fold_day(1.5, 0.2, 50.0, 0.9);
        }
        assert!((a.mean() - 1.5).abs() < 1e-9);
        assert!((a.stddev() - 0.2).abs() < 1e-9);
        // Effective weight converges to day_weight / (1 − decay) = 500.
        assert!((a.weight() - 500.0).abs() < 1.0);
    }

    #[test]
    fn age_weighted_between_day_variance_counts() {
        let mut a = AgeWeighted::new();
        a.fold_day(1.0, 0.0, 100.0, 1.0);
        a.fold_day(3.0, 0.0, 100.0, 1.0);
        // Equal weights, no within-day variance ⇒ var = 1.0 (spread of means).
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert!((a.stddev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn age_weighted_empty() {
        let a = AgeWeighted::new();
        assert!(a.is_empty());
        assert_eq!(a.mean(), 0.0);
    }
}
