//! Distribution fitting and goodness-of-fit comparison.
//!
//! Reproduces the model-selection exercise of the paper's Fig. 7: fit
//! normal, log-normal, Gamma and GEV to a CPI sample and rank them by
//! goodness of fit. Fitting methods: moments (normal, log-normal), Newton
//! MLE (Gamma), and L-moments / probability-weighted moments (GEV, the
//! standard Hosking estimator). Goodness of fit: Kolmogorov–Smirnov
//! statistic, log-likelihood, and AIC.

use crate::distribution::{ContinuousDist, Gamma, Gev, LogNormal, Normal};
use crate::optimize::nelder_mead;
use crate::special::{digamma, gamma as gamma_fn, trigamma};
use crate::summary::RunningStats;

/// Fits a normal distribution by the method of moments.
///
/// Returns `None` for fewer than two observations or zero variance.
pub fn fit_normal(xs: &[f64]) -> Option<Normal> {
    let s = RunningStats::from_slice(xs);
    if s.count() < 2 || s.sample_stddev() <= 0.0 {
        return None;
    }
    Some(Normal::new(s.mean(), s.sample_stddev()))
}

/// Fits a log-normal distribution by moments of `ln x`.
///
/// Returns `None` if any observation is non-positive, there are fewer than
/// two, or the log-variance is zero.
pub fn fit_lognormal(xs: &[f64]) -> Option<LogNormal> {
    if xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let s = RunningStats::from_slice(&logs);
    if s.count() < 2 || s.sample_stddev() <= 0.0 {
        return None;
    }
    Some(LogNormal::new(s.mean(), s.sample_stddev()))
}

/// Fits a Gamma distribution by maximum likelihood (Newton on the shape).
///
/// Starts from the Minka closed-form approximation and refines with Newton
/// steps on `ln k − ψ(k) = ln(mean) − mean(ln x)`. Returns `None` for
/// non-positive data, fewer than two observations, or degenerate spread.
pub fn fit_gamma(xs: &[f64]) -> Option<Gamma> {
    if xs.len() < 2 || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let mean_ln = xs.iter().map(|x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_ln; // ≥ 0 by Jensen; 0 iff all equal.
    if !(s.is_finite()) || s <= 1e-12 {
        return None;
    }
    // Minka's initializer.
    let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..50 {
        let f = k.ln() - digamma(k) - s;
        let fp = 1.0 / k - trigamma(k);
        let step = f / fp;
        let next = k - step;
        let next = if next <= 0.0 { k / 2.0 } else { next };
        if (next - k).abs() < 1e-12 * k {
            k = next;
            break;
        }
        k = next;
    }
    if !k.is_finite() || k <= 0.0 {
        return None;
    }
    Some(Gamma::new(k, mean / k))
}

/// Fits a GEV distribution by L-moments (Hosking's estimator).
///
/// Returns `None` for fewer than three observations or degenerate spread.
pub fn fit_gev(xs: &[f64]) -> Option<Gev> {
    if xs.len() < 3 {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;

    // Probability-weighted moments b0, b1, b2.
    let (mut b0, mut b1, mut b2) = (0.0, 0.0, 0.0);
    for (j, &x) in sorted.iter().enumerate() {
        let j1 = j as f64; // zero-based index.
        b0 += x;
        b1 += x * j1 / (n - 1.0);
        b2 += x * j1 * (j1 - 1.0) / ((n - 1.0) * (n - 2.0));
    }
    b0 /= n;
    b1 /= n;
    b2 /= n;

    let l1 = b0;
    let l2 = 2.0 * b1 - b0;
    let l3 = 6.0 * b2 - 6.0 * b1 + b0;
    if l2 <= 0.0 {
        return None;
    }
    let t3 = l3 / l2;

    // Hosking's approximation for the shape (his κ; our xi = −κ).
    let c = 2.0 / (3.0 + t3) - std::f64::consts::LN_2 / 3.0f64.ln();
    let kappa = 7.8590 * c + 2.9554 * c * c;
    if kappa.abs() < 1e-9 {
        // Gumbel limit.
        let sigma = l2 / std::f64::consts::LN_2;
        let mu = l1 - sigma * 0.577_215_664_901_532_9;
        return Some(Gev::new(mu, sigma, 0.0));
    }
    let g = gamma_fn(1.0 + kappa);
    let sigma = l2 * kappa / ((1.0 - 2.0f64.powf(-kappa)) * g);
    if !(sigma.is_finite()) || sigma <= 0.0 {
        return None;
    }
    let mu = l1 - sigma * (1.0 - g) / kappa;
    Some(Gev::new(mu, sigma, -kappa))
}

/// Refines a GEV fit by maximum likelihood (Nelder–Mead on the negative
/// log-likelihood, started from the L-moment estimate).
///
/// Returns the MLE fit, or the L-moment fit unchanged when the optimizer
/// cannot improve on it. The likelihood is guarded: parameter vectors with
/// any observation off the support score `−∞` and are rejected.
pub fn fit_gev_mle(xs: &[f64]) -> Option<Gev> {
    let init = fit_gev(xs)?;
    let nll = |p: &[f64]| {
        let (mu, sigma, xi) = (p[0], p[1], p[2]);
        if !(sigma.is_finite() && sigma > 1e-9 && mu.is_finite() && xi.is_finite()) {
            return f64::INFINITY;
        }
        let d = Gev::new(mu, sigma, xi);
        -log_likelihood(xs, &d)
    };
    let start = [init.mu, init.sigma, init.xi];
    let scale = [init.sigma * 0.1, init.sigma * 0.1, 0.05];
    let m = nelder_mead(nll, &start, &scale, 2_000, 1e-10);
    if !m.value.is_finite() {
        return Some(init);
    }
    let refined = Gev::new(m.x[0], m.x[1], m.x[2]);
    // Keep whichever has the higher likelihood (NM can only improve, but
    // guard against numerical mishaps).
    if log_likelihood(xs, &refined) >= log_likelihood(xs, &init) {
        Some(refined)
    } else {
        Some(init)
    }
}

/// Kolmogorov–Smirnov statistic `D = sup |F_n(x) − F(x)|`.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn ks_statistic<D: ContinuousDist>(xs: &[f64], dist: &D) -> f64 {
    assert!(!xs.is_empty(), "ks_statistic: empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Total log-likelihood of the sample under the distribution.
pub fn log_likelihood<D: ContinuousDist>(xs: &[f64], dist: &D) -> f64 {
    xs.iter().map(|&x| dist.ln_pdf(x)).sum()
}

/// Akaike information criterion `2k − 2 ln L`.
pub fn aic(ll: f64, params: usize) -> f64 {
    2.0 * params as f64 - 2.0 * ll
}

/// Asymptotic p-value of the one-sample Kolmogorov–Smirnov test.
///
/// Uses the Kolmogorov distribution with the Stephens small-sample
/// correction: `λ = (√n + 0.12 + 0.11/√n)·D`,
/// `p = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
///
/// # Panics
///
/// Panics if `n == 0` or `d` is not in `[0, 1]`.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    assert!(n > 0, "ks_p_value: empty sample");
    assert!((0.0..=1.0).contains(&d), "ks_p_value: D={d} out of [0,1]");
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut p = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        p += if k % 2 == 1 { 2.0 * term } else { -2.0 * term };
        if term < 1e-12 {
            break;
        }
    }
    p.clamp(0.0, 1.0)
}

/// Candidate model in a fit comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Normal (2 parameters).
    Normal,
    /// Log-normal (2 parameters).
    LogNormal,
    /// Gamma (2 parameters).
    Gamma,
    /// Generalized extreme value (3 parameters).
    Gev,
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Model::Normal => "normal",
            Model::LogNormal => "log-normal",
            Model::Gamma => "gamma",
            Model::Gev => "GEV",
        };
        f.write_str(name)
    }
}

/// One fitted candidate with its goodness-of-fit scores.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// Which family.
    pub model: Model,
    /// Human-readable fitted parameters.
    pub params: String,
    /// Kolmogorov–Smirnov statistic (lower is better).
    pub ks: f64,
    /// Log-likelihood (higher is better).
    pub log_likelihood: f64,
    /// AIC (lower is better).
    pub aic: f64,
}

/// Result of fitting all four candidate families to a sample.
#[derive(Debug, Clone)]
pub struct FitComparison {
    /// Successfully fitted candidates, sorted by ascending KS statistic.
    pub fits: Vec<FittedModel>,
}

impl FitComparison {
    /// The best-fitting model by KS statistic.
    ///
    /// Returns `None` when nothing could be fitted.
    pub fn best(&self) -> Option<&FittedModel> {
        self.fits.first()
    }
}

/// Fits normal, log-normal, Gamma and GEV to the sample and ranks them —
/// the Fig. 7 model-selection procedure.
///
/// # Examples
///
/// ```
/// use cpi2_stats::rng::SimRng;
/// use cpi2_stats::fit::{compare_fits, Model};
///
/// // CPI samples drawn from the paper's published best fit.
/// let mut rng = SimRng::new(7);
/// let cpis: Vec<f64> = (0..20_000).map(|_| rng.gev(1.73, 0.133, -0.0534)).collect();
/// let comparison = compare_fits(&cpis);
/// assert_eq!(comparison.best().unwrap().model, Model::Gev);
/// ```
pub fn compare_fits(xs: &[f64]) -> FitComparison {
    let mut fits = Vec::new();
    if let Some(d) = fit_normal(xs) {
        let ll = log_likelihood(xs, &d);
        fits.push(FittedModel {
            model: Model::Normal,
            params: format!("N({:.4}, {:.4})", d.mean, d.stddev),
            ks: ks_statistic(xs, &d),
            log_likelihood: ll,
            aic: aic(ll, 2),
        });
    }
    if let Some(d) = fit_lognormal(xs) {
        let ll = log_likelihood(xs, &d);
        fits.push(FittedModel {
            model: Model::LogNormal,
            params: format!("LogN({:.4}, {:.4})", d.mu, d.sigma),
            ks: ks_statistic(xs, &d),
            log_likelihood: ll,
            aic: aic(ll, 2),
        });
    }
    if let Some(d) = fit_gamma(xs) {
        let ll = log_likelihood(xs, &d);
        fits.push(FittedModel {
            model: Model::Gamma,
            params: format!("Gamma(k={:.4}, θ={:.4})", d.shape, d.scale),
            ks: ks_statistic(xs, &d),
            log_likelihood: ll,
            aic: aic(ll, 2),
        });
    }
    if let Some(d) = fit_gev(xs) {
        let ll = log_likelihood(xs, &d);
        fits.push(FittedModel {
            model: Model::Gev,
            params: format!("GEV({:.4}, {:.4}, {:.4})", d.mu, d.sigma, d.xi),
            ks: ks_statistic(xs, &d),
            log_likelihood: ll,
            aic: aic(ll, 2),
        });
    }
    fits.sort_by(|a, b| a.ks.partial_cmp(&b.ks).expect("finite KS"));
    FitComparison { fits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn fit_normal_recovers_parameters() {
        let mut r = SimRng::new(1);
        let xs: Vec<f64> = (0..50_000).map(|_| r.normal_with(1.8, 0.16)).collect();
        let d = fit_normal(&xs).unwrap();
        assert!((d.mean - 1.8).abs() < 0.01, "mean={}", d.mean);
        assert!((d.stddev - 0.16).abs() < 0.01, "stddev={}", d.stddev);
    }

    #[test]
    fn fit_lognormal_recovers_parameters() {
        let mut r = SimRng::new(2);
        let xs: Vec<f64> = (0..50_000).map(|_| r.lognormal(0.5, 0.25)).collect();
        let d = fit_lognormal(&xs).unwrap();
        assert!((d.mu - 0.5).abs() < 0.01);
        assert!((d.sigma - 0.25).abs() < 0.01);
    }

    #[test]
    fn fit_lognormal_rejects_nonpositive() {
        assert!(fit_lognormal(&[1.0, -2.0, 3.0]).is_none());
    }

    #[test]
    fn fit_gamma_recovers_parameters() {
        let mut r = SimRng::new(3);
        let xs: Vec<f64> = (0..50_000).map(|_| r.gamma(4.0, 0.5)).collect();
        let d = fit_gamma(&xs).unwrap();
        assert!((d.shape - 4.0).abs() < 0.2, "shape={}", d.shape);
        assert!((d.scale - 0.5).abs() < 0.05, "scale={}", d.scale);
    }

    #[test]
    fn fit_gamma_degenerate_is_none() {
        assert!(fit_gamma(&[2.0, 2.0, 2.0, 2.0]).is_none());
    }

    #[test]
    fn fit_gev_recovers_paper_parameters() {
        // Sample from the paper's fit and re-estimate.
        let mut r = SimRng::new(4);
        let xs: Vec<f64> = (0..100_000).map(|_| r.gev(1.73, 0.133, -0.0534)).collect();
        let d = fit_gev(&xs).unwrap();
        assert!((d.mu - 1.73).abs() < 0.02, "mu={}", d.mu);
        assert!((d.sigma - 0.133).abs() < 0.01, "sigma={}", d.sigma);
        assert!((d.xi + 0.0534).abs() < 0.05, "xi={}", d.xi);
    }

    #[test]
    fn ks_statistic_sanity() {
        let mut r = SimRng::new(5);
        let xs: Vec<f64> = (0..10_000).map(|_| r.normal()).collect();
        let good = Normal::new(0.0, 1.0);
        let bad = Normal::new(1.0, 1.0);
        assert!(ks_statistic(&xs, &good) < 0.03);
        assert!(ks_statistic(&xs, &bad) > 0.3);
    }

    #[test]
    fn gev_sample_prefers_gev() {
        // The core Fig. 7 claim: GEV-distributed CPI data is best fit by GEV.
        let mut r = SimRng::new(6);
        let xs: Vec<f64> = (0..50_000).map(|_| r.gev(1.73, 0.133, -0.0534)).collect();
        let cmp = compare_fits(&xs);
        assert_eq!(cmp.fits.len(), 4);
        assert_eq!(cmp.best().unwrap().model, Model::Gev);
    }

    #[test]
    fn normal_sample_not_fit_worse_by_normal_than_lognormal() {
        let mut r = SimRng::new(7);
        let xs: Vec<f64> = (0..50_000).map(|_| r.normal_with(10.0, 1.0)).collect();
        let cmp = compare_fits(&xs);
        let ks_of = |m: Model| cmp.fits.iter().find(|f| f.model == m).unwrap().ks;
        assert!(ks_of(Model::Normal) <= ks_of(Model::LogNormal) + 0.005);
    }

    #[test]
    fn aic_penalizes_parameters() {
        assert!(aic(-100.0, 3) > aic(-100.0, 2));
        assert!((aic(0.0, 2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_off_support_is_neg_inf() {
        let d = LogNormal::new(0.0, 1.0);
        assert_eq!(log_likelihood(&[-1.0], &d), f64::NEG_INFINITY);
    }
}

#[cfg(test)]
mod mle_tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn gev_mle_improves_or_matches_l_moments() {
        let mut r = SimRng::new(40);
        let xs: Vec<f64> = (0..5_000).map(|_| r.gev(1.73, 0.133, -0.0534)).collect();
        let lmom = fit_gev(&xs).unwrap();
        let mle = fit_gev_mle(&xs).unwrap();
        assert!(
            log_likelihood(&xs, &mle) >= log_likelihood(&xs, &lmom) - 1e-9,
            "MLE must not be worse than its L-moment start"
        );
        assert!((mle.mu - 1.73).abs() < 0.02, "mu={}", mle.mu);
        assert!((mle.sigma - 0.133).abs() < 0.01, "sigma={}", mle.sigma);
    }

    #[test]
    fn gev_mle_handles_gumbel_data() {
        let mut r = SimRng::new(41);
        let xs: Vec<f64> = (0..5_000).map(|_| r.gev(0.0, 1.0, 0.0)).collect();
        let mle = fit_gev_mle(&xs).unwrap();
        assert!(mle.xi.abs() < 0.08, "xi={}", mle.xi);
    }

    #[test]
    fn ks_p_value_extremes() {
        // Tiny D on a large sample: no evidence against the fit.
        assert!(ks_p_value(0.005, 10_000) > 0.5);
        // Large D on a large sample: decisive rejection.
        assert!(ks_p_value(0.2, 10_000) < 1e-6);
        // D = 0 is a perfect fit.
        assert_eq!(ks_p_value(0.0, 100), 1.0);
    }

    #[test]
    fn ks_p_value_matches_known_quantile() {
        // The 5% critical value of the Kolmogorov distribution is
        // λ ≈ 1.358; for large n, D = 1.358/√n should give p ≈ 0.05.
        let n = 1_000_000;
        let d = 1.358 / (n as f64).sqrt();
        let p = ks_p_value(d, n);
        assert!((p - 0.05).abs() < 0.005, "p={p}");
    }

    #[test]
    fn correct_model_passes_ks_wrong_model_fails() {
        let mut r = SimRng::new(42);
        let xs: Vec<f64> = (0..20_000).map(|_| r.gev(1.73, 0.133, -0.0534)).collect();
        let good = fit_gev_mle(&xs).unwrap();
        let p_good = ks_p_value(ks_statistic(&xs, &good), xs.len());
        let bad = crate::distribution::Normal::new(1.8, 0.16);
        let p_bad = ks_p_value(ks_statistic(&xs, &bad), xs.len());
        assert!(p_good > 0.01, "good fit rejected: p={p_good}");
        assert!(p_bad < 1e-6, "bad fit accepted: p={p_bad}");
    }
}
