//! Histograms, empirical CDFs and quantiles.
//!
//! Used to reproduce the paper's CDF figures (Figs. 1, 14, 16d) and the CPI
//! distribution of Fig. 7.

use serde::{Deserialize, Serialize};

/// Fixed-width-bin histogram over `[lo, hi)` with saturation at the edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: bins must be positive");
        assert!(lo < hi, "Histogram: lo={lo} must be < hi={hi}");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let idx = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
        let idx = idx.min(self.counts.len().saturating_sub(1));
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations pushed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of all observations that landed in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Iterates `(bin_center, fraction)` pairs — the series plotted in Fig. 7.
    pub fn series(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.bin_center(i), self.fraction(i)))
    }
}

/// Quantile over pre-bucketed counts by linear interpolation within the
/// containing bucket.
///
/// `buckets` is a sequence of `(lo, hi, count)` rows in ascending order;
/// degenerate rows with `hi <= lo` (saturating under/overflow buckets that
/// have no real width) contribute their count at position `lo`. Returns
/// `None` when the total count is zero. `q` is clamped to `[0, 1]`.
///
/// This is the quantile engine behind both [`Histogram::quantile`] and the
/// log-bucketed telemetry histograms in `cpi2-telemetry`.
pub fn bucket_quantile(buckets: &[(f64, f64, u64)], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().map(|&(_, _, n)| n).sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target observation, 1-based; q=0 → first, q=1 → last.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for &(lo, hi, n) in buckets {
        if n == 0 {
            continue;
        }
        if seen + n >= rank {
            if hi <= lo {
                return Some(lo);
            }
            // Interpolate within the bucket: the rank-th observation sits
            // (rank - seen) of the way through the n observations here.
            let frac = (rank - seen) as f64 / n as f64;
            return Some(lo + (hi - lo) * frac);
        }
        seen += n;
    }
    // Unreachable for consistent inputs; defend against rounding.
    buckets
        .iter()
        .rev()
        .find(|&&(_, _, n)| n > 0)
        .map(|&(lo, hi, _)| if hi <= lo { lo } else { hi })
}

impl Histogram {
    /// Quantile estimate by linear interpolation within bins.
    ///
    /// Underflow observations count at `lo`, overflow observations at
    /// `hi` (the saturation points). Returns `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut rows = Vec::with_capacity(self.counts.len() + 2);
        rows.push((self.lo, self.lo, self.underflow));
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &n) in self.counts.iter().enumerate() {
            rows.push((self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w, n));
        }
        rows.push((self.hi, self.hi, self.overflow));
        bucket_quantile(&rows, q)
    }
}

/// Empirical distribution built from a sample, giving CDF and quantiles.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an empirical CDF from observations (NaNs are dropped).
    ///
    /// # Panics
    ///
    /// Panics if no finite observations remain.
    pub fn new(mut xs: Vec<f64>) -> Self {
        xs.retain(|x| x.is_finite());
        assert!(!xs.is_empty(), "Ecdf: need at least one finite observation");
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ecdf { sorted: xs }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction requires ≥1 observation).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Empirical CDF value `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of elements ≤ x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile by linear interpolation of order statistics.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile: q={q} out of [0,1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= n {
            self.sorted[n - 1]
        } else {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        }
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Sorted backing data.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Samples the CDF at `points` evenly spaced values across the data
    /// range, returning `(x, F(x))` pairs — the series for CDF plots.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if points <= 1 || hi <= lo {
            return vec![(lo, self.cdf(lo))];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.count(i), 1, "bin {i}");
        }
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(1.0); // hi is exclusive → overflow
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_fractions_sum_to_in_range_share() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..100 {
            h.push(i as f64 / 100.0);
        }
        let sum: f64 = (0..5).map(|i| h.fraction(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_quantile_empty_is_none() {
        assert_eq!(bucket_quantile(&[], 0.5), None);
        assert_eq!(bucket_quantile(&[(0.0, 1.0, 0), (1.0, 2.0, 0)], 0.5), None);
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn bucket_quantile_single_sample() {
        // One observation in one bucket: every quantile lands inside it.
        let rows = [(2.0, 4.0, 1)];
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = bucket_quantile(&rows, q).unwrap();
            assert!((2.0..=4.0).contains(&v), "q={q} v={v}");
        }
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(7.3);
        let p50 = h.quantile(0.5).unwrap();
        assert!((7.0..=8.0).contains(&p50), "p50={p50}");
    }

    #[test]
    fn bucket_quantile_all_in_one_bucket() {
        let rows = [(0.0, 1.0, 0), (1.0, 2.0, 100), (2.0, 4.0, 0)];
        let p50 = bucket_quantile(&rows, 0.5).unwrap();
        let p99 = bucket_quantile(&rows, 0.99).unwrap();
        assert!((1.0..=2.0).contains(&p50));
        assert!((1.0..=2.0).contains(&p99));
        assert!(p50 <= p99, "quantiles must be monotone: {p50} vs {p99}");
        assert!((p50 - 1.5).abs() < 1e-9, "midpoint expected, got {p50}");
    }

    #[test]
    fn bucket_quantile_saturating_overflow() {
        // Degenerate overflow bucket (hi <= lo): reports the saturation
        // point itself, never interpolates past it.
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..10 {
            h.push(3.5);
        }
        for _ in 0..90 {
            h.push(1e9); // all saturate into overflow
        }
        assert_eq!(h.quantile(0.99), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        let p5 = h.quantile(0.05).unwrap();
        assert!((3.0..=4.0).contains(&p5), "p5={p5}");
    }

    #[test]
    fn bucket_quantile_underflow_saturates_at_lo() {
        let mut h = Histogram::new(5.0, 10.0, 5);
        for _ in 0..100 {
            h.push(-3.0);
        }
        assert_eq!(h.quantile(0.5), Some(5.0));
    }

    #[test]
    fn bucket_quantile_is_monotone_in_q() {
        let rows = [(0.0, 1.0, 7), (1.0, 2.0, 13), (2.0, 4.0, 29), (4.0, 4.0, 3)];
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = bucket_quantile(&rows, i as f64 / 20.0).unwrap();
            assert!(v >= last, "q={} v={v} last={last}", i as f64 / 20.0);
            last = v;
        }
    }

    #[test]
    fn ecdf_cdf_steps() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.median(), 30.0);
        assert!((e.quantile(0.25) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    #[should_panic]
    fn ecdf_empty_panics() {
        Ecdf::new(vec![f64::NAN]);
    }

    #[test]
    fn ecdf_series_monotone() {
        let e = Ecdf::new((0..100).map(|i| (i as f64).sqrt()).collect());
        let s = e.series(20);
        assert_eq!(s.len(), 20);
        for w in s.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
