//! Statistics substrate for the CPI² reproduction.
//!
//! Everything statistical the paper relies on, implemented from scratch:
//!
//! * [`summary`] — streaming mean/σ (Welford) with parallel merge, the
//!   machinery behind per-job CPI specs.
//! * [`histogram`] — histograms, empirical CDFs and quantiles for the
//!   paper's CDF figures.
//! * [`correlation`] — Pearson/Spearman/OLS/autocorrelation for the
//!   motivation figures (TPS↔IPS, latency↔CPI, L3↔CPI).
//! * [`distribution`] / [`fit`] — normal, log-normal, Gamma and GEV with
//!   fitting and goodness-of-fit ranking (Fig. 7 model selection).
//! * [`ewma`] — the 0.9/day age weighting of historical CPI specs.
//! * [`rng`] — deterministic seedable RNG + samplers so every experiment
//!   is reproducible.
//! * [`timeseries`] — time-aligned windows for the §4.2 antagonist
//!   correlation.

#![warn(missing_docs)]

pub mod correlation;
pub mod distribution;
pub mod ewma;
pub mod fit;
pub mod histogram;
pub mod optimize;
pub mod rng;
pub mod special;
pub mod summary;
pub mod timeseries;

pub use correlation::{linear_fit, pearson, spearman};
pub use distribution::{ContinuousDist, Gamma, Gev, LogNormal, Normal};
pub use ewma::{AgeWeighted, Ewma};
pub use fit::{
    compare_fits, fit_gamma, fit_gev, fit_gev_mle, fit_lognormal, fit_normal, ks_p_value,
};
pub use histogram::{Ecdf, Histogram};
pub use optimize::nelder_mead;
pub use rng::{SimRng, Zipf};
pub use summary::{RunningStats, WeightedStats};
pub use timeseries::TimeSeries;
