//! Derivative-free minimization (Nelder–Mead).
//!
//! Used to refine distribution fits by maximum likelihood: the L-moment
//! estimators give an excellent starting point and Nelder–Mead polishes
//! the log-likelihood without needing gradients of the GEV density.

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct Minimum {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Function value at `x`.
    pub value: f64,
    /// Iterations used.
    pub iterations: u32,
}

/// Minimizes `f` from `start` with the Nelder–Mead simplex method.
///
/// `scale` sets the initial simplex size per dimension. Non-finite
/// function values are treated as `+∞`, so constrained regions can simply
/// return `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `start` is empty or lengths mismatch.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    start: &[f64],
    scale: &[f64],
    max_iter: u32,
    tolerance: f64,
) -> Minimum {
    assert!(!start.is_empty(), "nelder_mead: empty start");
    assert_eq!(
        start.len(),
        scale.len(),
        "nelder_mead: scale length mismatch"
    );
    let n = start.len();
    let mut eval = |x: &[f64]| {
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Initial simplex: start plus one vertex per axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = eval(start);
    simplex.push((start.to_vec(), v0));
    for i in 0..n {
        let mut x = start.to_vec();
        x[i] += scale[i];
        let v = eval(&x);
        simplex.push((x, v));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut iterations = 0;
    while iterations < max_iter {
        iterations += 1;
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("ordered values"));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if worst.is_finite() && (worst - best).abs() <= tolerance * (1.0 + best.abs()) {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst_x = simplex[n].0.clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst_x)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = eval(&reflect);

        if fr < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            let fe = eval(&expand);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = eval(&contract);
            if fc < simplex[n].1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best vertex.
                let best_x = simplex[0].0.clone();
                for (x, v) in simplex.iter_mut().skip(1) {
                    for (xi, bi) in x.iter_mut().zip(&best_x) {
                        *xi = bi + sigma * (*xi - bi);
                    }
                    *v = eval(x);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("ordered values"));
    Minimum {
        x: simplex[0].0.clone(),
        value: simplex[0].1,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let m = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &[1.0, 1.0],
            500,
            1e-12,
        );
        assert!((m.x[0] - 3.0).abs() < 1e-4, "{:?}", m.x);
        assert!((m.x[1] + 1.0).abs() < 1e-4, "{:?}", m.x);
        assert!(m.value < 1e-7);
    }

    #[test]
    fn rosenbrock() {
        let m = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            &[0.5, 0.5],
            5_000,
            1e-14,
        );
        assert!((m.x[0] - 1.0).abs() < 1e-3, "{:?}", m.x);
        assert!((m.x[1] - 1.0).abs() < 1e-3, "{:?}", m.x);
    }

    #[test]
    fn respects_infinite_barrier() {
        // Constrained: f = x² for x > 0, ∞ otherwise; start feasible.
        let m = nelder_mead(
            |x| {
                if x[0] <= 0.0 {
                    f64::INFINITY
                } else {
                    (x[0] - 0.5).powi(2)
                }
            },
            &[2.0],
            &[0.5],
            500,
            1e-12,
        );
        assert!(m.x[0] > 0.0);
        assert!((m.x[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn one_dimensional() {
        let m = nelder_mead(|x| (x[0] - 7.0).abs(), &[0.0], &[1.0], 500, 1e-12);
        assert!((m.x[0] - 7.0).abs() < 1e-3);
    }
}
