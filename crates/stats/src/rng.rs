//! Deterministic pseudo-random number generation for reproducible simulation.
//!
//! Every stochastic component of the CPI² reproduction draws from a
//! [`SimRng`] seeded explicitly, so experiments are bit-for-bit reproducible
//! run-to-run. The generator is a SplitMix64-seeded xoshiro256++, with
//! convenience samplers for the distributions the simulator needs.

/// SplitMix64 step: used for seeding and for cheap stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable PRNG (xoshiro256++).
///
/// # Examples
///
/// ```
/// use cpi2_stats::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal variate from the polar method.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent child stream from this seed and a stream id.
    ///
    /// Children with different ids have uncorrelated sequences; the parent
    /// is not advanced. Used to hand each machine/task its own stream.
    pub fn derive(seed: u64, stream: u64) -> Self {
        let mut sm = seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let _ = splitmix64(&mut sm);
        SimRng::new(splitmix64(&mut sm))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // Destructuring the state array keeps the xoshiro mix free of
        // `[…]` indexing (panic-freedom is machine-checked here: this fn
        // is reachable from `Machine::tick`).
        let [s0, s1, s2, s3] = &mut self.s;
        let r = (s0.wrapping_add(*s3)).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        r
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range_f64: lo={lo} > hi={hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` without modulo bias (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: n must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let l = m as u64;
            if l >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone for unbiased sampling.
            let t = n.wrapping_neg() % n;
            if l >= t {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo={lo} > hi={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.normal()
    }

    /// Log-normal variate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// Exponential variate with the given rate `lambda`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential: lambda must be positive");
        // 1 − U is in (0, 1], so the log is finite.
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Gamma variate (shape `k`, scale `theta`) via Marsaglia–Tsang.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && scale > 0.0,
            "gamma: parameters must be positive"
        );
        if shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
            let g = self.gamma(shape + 1.0, 1.0);
            let u = loop {
                let u = self.f64();
                if u > 0.0 {
                    break u;
                }
            };
            return scale * g * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.f64();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return scale * d * v;
            }
        }
    }

    /// Generalized-extreme-value variate with location `mu`, scale `sigma`,
    /// shape `xi` (the paper's Figure 7 fit uses `xi ≈ −0.053`).
    pub fn gev(&mut self, mu: f64, sigma: f64, xi: f64) -> f64 {
        assert!(sigma > 0.0, "gev: sigma must be positive");
        let u = loop {
            let u = self.f64();
            if u > 0.0 && u < 1.0 {
                break u;
            }
        };
        let ln_u = -u.ln(); // Exponential(1) variate as −ln U.
        if xi.abs() < 1e-12 {
            mu - sigma * ln_u.ln()
        } else {
            mu + sigma * (ln_u.powf(-xi) - 1.0) / xi
        }
    }

    /// Poisson variate with mean `lambda`.
    ///
    /// Knuth's product method for small means; normal approximation with
    /// rounding for `lambda > 30` (adequate for workload arrival counts).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson: lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal_with(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Pareto variate with scale `xm` and tail index `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto: parameters must be positive"
        );
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        xm / u.powf(1.0 / alpha)
    }

    /// Picks one index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index: weights must be non-empty with positive sum"
        );
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Exact finite Zipf sampler over ranks `[1, n]` with exponent `s`.
///
/// Precomputes the cumulative mass once (O(n) memory) and samples by
/// binary search (O(log n) per draw) — exact for any `s > 0`.
///
/// # Examples
///
/// ```
/// use cpi2_stats::rng::{SimRng, Zipf};
/// let z = Zipf::new(100, 1.2);
/// let mut r = SimRng::new(1);
/// let rank = z.sample(&mut r);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0 && s > 0.0, "Zipf: invalid parameters n={n} s={s}");
        let mut cum = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cum.push(acc);
        }
        Zipf { cum }
    }

    /// Draws one rank in `[1, n]`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let total = *self.cum.last().expect("non-empty by construction");
        let u = rng.f64() * total;
        (self.cum.partition_point(|&c| c <= u) + 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_streams_independent() {
        let mut a = SimRng::derive(9, 0);
        let mut b = SimRng::derive(9, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = SimRng::new(7);
        let (shape, scale) = (3.0, 2.0);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gamma(shape, scale)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - shape * scale).abs() < 0.1, "mean={mean}");
        assert!((var - shape * scale * scale).abs() < 0.5, "var={var}");
    }

    #[test]
    fn gamma_shape_below_one() {
        let mut r = SimRng::new(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gamma(0.5, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn gev_gumbel_limit_median() {
        // For xi = 0 (Gumbel), median = mu − sigma·ln(ln 2).
        let mut r = SimRng::new(9);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| r.gev(1.0, 0.5, 0.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        let expect = 1.0 - 0.5 * (2.0f64.ln()).ln();
        assert!(
            (median - expect).abs() < 0.02,
            "median={median} expect={expect}"
        );
    }

    #[test]
    fn poisson_small_and_large() {
        let mut r = SimRng::new(10);
        let n = 50_000;
        let mean_small: f64 = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean_small - 3.0).abs() < 0.05, "mean={mean_small}");
        let mean_large: f64 = (0..n).map(|_| r.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean_large - 100.0).abs() < 0.5, "mean={mean_large}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let z = Zipf::new(100, 1.2);
        let mut r = SimRng::new(12);
        let mut count_one = 0;
        for _ in 0..10_000 {
            let x = z.sample(&mut r);
            assert!((1..=100).contains(&x));
            if x == 1 {
                count_one += 1;
            }
        }
        // Rank 1 should dominate for s > 1.
        assert!(count_one > 1_000, "count_one={count_one}");
    }

    #[test]
    fn zipf_rank_ratio_matches_mass() {
        // P(1)/P(2) = 2^s.
        let z = Zipf::new(10, 1.0);
        let mut r = SimRng::new(15);
        let mut c = [0u32; 2];
        for _ in 0..100_000 {
            match z.sample(&mut r) {
                1 => c[0] += 1,
                2 => c[1] += 1,
                _ => {}
            }
        }
        let ratio = c[0] as f64 / c[1] as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio={ratio}");
    }

    #[test]
    fn weighted_index_proportional() {
        let mut r = SimRng::new(13);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(14);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
