//! Special mathematical functions used by the distribution and fitting code.
//!
//! Everything here is implemented from scratch (no external math crates):
//! log-gamma via the Lanczos approximation, the error function via the
//! Abramowitz–Stegun rational approximation refined with a series/continued
//! fraction for the incomplete gamma, and digamma via asymptotic expansion.

/// Lanczos coefficients for `g = 7`, `n = 9` (Boost/GSL choice).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Accurate to ~15 significant digits over the positive reals via the
/// Lanczos approximation with reflection for `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS_COEF[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Error function `erf(x)`, accurate to ~1e-15 via the incomplete gamma.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = lower_inc_gamma_regularized(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal CDF `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Uses the Acklam rational approximation refined with one Halley step,
/// giving ~1e-15 relative accuracy on `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not in the open interval `(0, 1)`.
pub fn norm_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_quantile: p={p} out of (0,1)");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the true CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes style).
pub fn lower_inc_gamma_regularized(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "lower_inc_gamma_regularized: a={a} must be > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x), then P = 1 − Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Recurrence to push the argument above 6, then the asymptotic expansion.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma: x={x} must be > 0");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Trigamma function `ψ'(x)` for `x > 0` (derivative of digamma).
pub fn trigamma(x: f64) -> f64 {
    assert!(x > 0.0, "trigamma: x={x} must be > 0");
    let mut x = x;
    let mut result = 0.0;
    while x < 20.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + inv * (1.0 + inv * (0.5 + inv * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n−1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3_628_800.0f64.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
    }

    #[test]
    fn norm_cdf_symmetry() {
        close(norm_cdf(0.0), 0.5, 1e-14);
        close(norm_cdf(1.96), 0.975_002_104_851_780, 1e-8);
        close(norm_cdf(-1.96) + norm_cdf(1.96), 1.0, 1e-12);
    }

    #[test]
    fn norm_quantile_roundtrip() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            close(norm_cdf(norm_quantile(p)), p, 1e-12);
        }
    }

    #[test]
    fn norm_quantile_known() {
        close(norm_quantile(0.975), 1.959_963_984_540_054, 1e-9);
        close(norm_quantile(0.5), 0.0, 1e-9);
    }

    #[test]
    #[should_panic]
    fn norm_quantile_rejects_zero() {
        norm_quantile(0.0);
    }

    #[test]
    fn inc_gamma_limits() {
        close(lower_inc_gamma_regularized(1.0, 1e9), 1.0, 1e-12);
        assert_eq!(lower_inc_gamma_regularized(1.0, 0.0), 0.0);
        // P(1, x) = 1 − e^{−x}.
        close(
            lower_inc_gamma_regularized(1.0, 2.0),
            1.0 - (-2.0f64).exp(),
            1e-12,
        );
    }

    #[test]
    fn inc_gamma_continued_fraction_branch() {
        // x > a + 1 exercises the continued-fraction path. P(2, 5).
        let expect = 1.0 - (1.0 + 5.0) * (-5.0f64).exp();
        close(lower_inc_gamma_regularized(2.0, 5.0), expect, 1e-12);
    }

    #[test]
    fn digamma_known() {
        // ψ(1) = −γ (Euler–Mascheroni).
        close(digamma(1.0), -0.577_215_664_901_532_9, 1e-10);
        // ψ(2) = 1 − γ.
        close(digamma(2.0), 1.0 - 0.577_215_664_901_532_9, 1e-10);
        // ψ(1/2) = −γ − 2 ln 2.
        close(
            digamma(0.5),
            -0.577_215_664_901_532_9 - 2.0 * 2.0f64.ln(),
            1e-10,
        );
    }

    #[test]
    fn trigamma_known() {
        // ψ'(1) = π²/6.
        close(trigamma(1.0), std::f64::consts::PI.powi(2) / 6.0, 1e-10);
    }
}
