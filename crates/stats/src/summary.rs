//! Streaming summary statistics (Welford's algorithm) with merging.
//!
//! The CPI² aggregator computes per-job mean/σ over tens of thousands of
//! samples arriving over hours; Welford's online update keeps that numerically
//! stable in a single pass, and the parallel-merge rule lets per-machine
//! partial aggregates be combined at the cluster level.

use serde::{Deserialize, Serialize};

/// Online mean / variance / min / max accumulator.
///
/// # Examples
///
/// ```
/// use cpi2_stats::summary::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = RunningStats::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel rule).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`/n`); `0.0` for fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (`/(n−1)`); `0.0` for fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (σ/µ); `0.0` when the mean is zero.
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean().abs()
        }
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Weighted mean / variance accumulator (for age-weighted history).
///
/// CPI² folds the previous day's spec into the new one with weight ≈ 0.9;
/// this accumulator supports arbitrary non-negative weights.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeightedStats {
    wsum: f64,
    mean: f64,
    s: f64,
    n: u64,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WeightedStats::default()
    }

    /// Adds one observation with the given weight.
    ///
    /// Observations with weight `0` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or non-finite.
    pub fn push(&mut self, x: f64, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "weight must be non-negative");
        if w == 0.0 {
            return;
        }
        self.n += 1;
        let wsum_new = self.wsum + w;
        let delta = x - self.mean;
        let r = delta * w / wsum_new;
        self.mean += r;
        self.s += self.wsum * delta * r;
        self.wsum = wsum_new;
    }

    /// Weighted mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.wsum == 0.0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Weighted (frequency-style) variance.
    pub fn variance(&self) -> f64 {
        if self.wsum == 0.0 {
            0.0
        } else {
            self.s / self.wsum
        }
    }

    /// Weighted standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Total weight accumulated.
    pub fn weight(&self) -> f64 {
        self.wsum
    }

    /// Number of (non-zero-weight) observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroish() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = RunningStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn sample_variance_bessel() {
        let s = RunningStats::from_slice(&[1.0, 2.0, 3.0]);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 3.0)
            .collect();
        let whole = RunningStats::from_slice(&xs);
        let mut a = RunningStats::from_slice(&xs[..337]);
        let b = RunningStats::from_slice(&xs[337..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::from_slice(&[1.0, 2.0]);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cv_matches_definition() {
        let s = RunningStats::from_slice(&[9.0, 10.0, 11.0]);
        assert!((s.cv() - s.stddev() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_equal_weights_match_unweighted() {
        let xs = [1.0, 5.0, 2.0, 8.0];
        let mut w = WeightedStats::new();
        for &x in &xs {
            w.push(x, 2.5);
        }
        let u = RunningStats::from_slice(&xs);
        assert!((w.mean() - u.mean()).abs() < 1e-12);
        assert!((w.variance() - u.variance()).abs() < 1e-12);
    }

    #[test]
    fn weighted_weight_dominance() {
        let mut w = WeightedStats::new();
        w.push(0.0, 1.0);
        w.push(10.0, 9.0);
        assert!((w.mean() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_zero_weight_ignored() {
        let mut w = WeightedStats::new();
        w.push(100.0, 0.0);
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
    }
}
