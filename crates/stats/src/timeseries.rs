//! Timestamped series with alignment and windowing.
//!
//! The antagonist-correlation analysis of §4.2 pairs the victim's CPI
//! samples with the suspect's CPU-usage samples over a 10-minute window;
//! [`TimeSeries::align`] produces those time-aligned pairs.

use serde::{Deserialize, Serialize};

/// A series of `(timestamp_us, value)` points in non-decreasing time order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(i64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Builds a series from points, sorting by timestamp.
    pub fn from_points(mut points: Vec<(i64, f64)>) -> Self {
        points.sort_by_key(|&(t, _)| t);
        TimeSeries { points }
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last timestamp.
    pub fn push(&mut self, t: i64, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries::push: non-monotonic timestamp");
        }
        self.points.push((t, v));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points.
    pub fn points(&self) -> &[(i64, f64)] {
        &self.points
    }

    /// Values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Points with `t ∈ [start, end)`.
    pub fn window(&self, start: i64, end: i64) -> TimeSeries {
        let lo = self.points.partition_point(|&(t, _)| t < start);
        let hi = self.points.partition_point(|&(t, _)| t < end);
        // `lo > hi` only when `start > end`; an empty window is the sane
        // answer there, not a slice panic.
        TimeSeries {
            points: self.points.get(lo..hi).unwrap_or(&[]).to_vec(),
        }
    }

    /// Drops points older than `cutoff`, keeping the series bounded.
    pub fn evict_before(&mut self, cutoff: i64) {
        let lo = self.points.partition_point(|&(t, _)| t < cutoff);
        self.points.drain(..lo);
    }

    /// Pairs this series with `other` by matching timestamps within
    /// `tolerance_us`, returning `(self_value, other_value)` pairs.
    ///
    /// Each point matches at most one point of the other series (nearest
    /// neighbour, two-pointer sweep).
    pub fn align(&self, other: &TimeSeries, tolerance_us: i64) -> Vec<(f64, f64)> {
        let Some(mut cur) = other.points.first().copied() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut j = 0usize;
        for &(t, v) in &self.points {
            // Advance to the nearest candidate (both series are sorted,
            // so the nearest index is non-decreasing in t). Tracking the
            // current point by value keeps the sweep index-free.
            while let Some(&next) = other.points.get(j + 1) {
                if (next.0 - t).abs() <= (cur.0 - t).abs() {
                    j += 1;
                    cur = next;
                } else {
                    break;
                }
            }
            let (ot, ov) = cur;
            if (ot - t).abs() <= tolerance_us {
                out.push((v, ov));
            }
        }
        out
    }

    /// Resamples into fixed buckets of `step_us`, averaging values per
    /// bucket; empty buckets are skipped.
    pub fn resample(&self, step_us: i64) -> TimeSeries {
        assert!(step_us > 0, "resample: step must be positive");
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.points.len() {
            let bucket = self.points[i].0.div_euclid(step_us);
            let mut sum = 0.0;
            let mut n = 0u32;
            while i < self.points.len() && self.points[i].0.div_euclid(step_us) == bucket {
                sum += self.points[i].1;
                n += 1;
                i += 1;
            }
            out.push((bucket * step_us + step_us / 2, sum / n as f64));
        }
        TimeSeries { points: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_window() {
        let mut s = TimeSeries::new();
        for t in 0..10 {
            s.push(t * 60, t as f64);
        }
        let w = s.window(120, 300);
        assert_eq!(w.len(), 3);
        assert_eq!(w.points()[0], (120, 2.0));
        assert_eq!(w.points()[2], (240, 4.0));
    }

    #[test]
    #[should_panic]
    fn push_rejects_regression() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn from_points_sorts() {
        let s = TimeSeries::from_points(vec![(30, 3.0), (10, 1.0), (20, 2.0)]);
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn evict_before_bounds_memory() {
        let mut s = TimeSeries::from_points((0..100).map(|t| (t, t as f64)).collect());
        s.evict_before(90);
        assert_eq!(s.len(), 10);
        assert_eq!(s.points()[0].0, 90);
    }

    #[test]
    fn align_exact_timestamps() {
        let a = TimeSeries::from_points(vec![(0, 1.0), (60, 2.0), (120, 3.0)]);
        let b = TimeSeries::from_points(vec![(0, 10.0), (60, 20.0), (120, 30.0)]);
        let pairs = a.align(&b, 0);
        assert_eq!(pairs, vec![(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]);
    }

    #[test]
    fn align_with_tolerance_and_gaps() {
        let a = TimeSeries::from_points(vec![(0, 1.0), (60, 2.0), (200, 3.0)]);
        let b = TimeSeries::from_points(vec![(5, 10.0), (63, 20.0)]);
        let pairs = a.align(&b, 10);
        assert_eq!(pairs, vec![(1.0, 10.0), (2.0, 20.0)]);
    }

    #[test]
    fn align_rejects_beyond_tolerance() {
        let a = TimeSeries::from_points(vec![(0, 1.0)]);
        let b = TimeSeries::from_points(vec![(100, 9.0)]);
        assert!(a.align(&b, 10).is_empty());
    }

    #[test]
    fn resample_averages_buckets() {
        let s = TimeSeries::from_points(vec![(0, 1.0), (10, 3.0), (100, 5.0)]);
        let r = s.resample(60);
        assert_eq!(r.len(), 2);
        assert!((r.points()[0].1 - 2.0).abs() < 1e-12);
        assert!((r.points()[1].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn resample_negative_timestamps() {
        let s = TimeSeries::from_points(vec![(-70, 1.0), (-10, 3.0)]);
        let r = s.resample(60);
        assert_eq!(r.len(), 2);
    }
}
