//! Property-based tests for the statistics substrate.

use cpi2_stats::correlation::{linear_fit, pearson, spearman};
use cpi2_stats::distribution::{ContinuousDist, Gamma, Gev, LogNormal, Normal};
use cpi2_stats::ewma::AgeWeighted;
use cpi2_stats::histogram::Ecdf;
use cpi2_stats::rng::SimRng;
use cpi2_stats::summary::{RunningStats, WeightedStats};
use cpi2_stats::timeseries::TimeSeries;
use proptest::prelude::*;

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 2..n)
}

proptest! {
    #[test]
    fn running_stats_merge_is_concatenation(a in finite_vec(50), b in finite_vec(50)) {
        let mut merged = RunningStats::from_slice(&a);
        merged.merge(&RunningStats::from_slice(&b));
        let mut all = a.clone();
        all.extend(&b);
        let whole = RunningStats::from_slice(&all);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((merged.variance() - whole.variance()).abs()
            < 1e-5 * (1.0 + whole.variance()));
    }

    #[test]
    fn running_stats_bounds(xs in finite_vec(100)) {
        let s = RunningStats::from_slice(&xs);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn weighted_stats_scale_invariant(xs in finite_vec(40), w in 0.1..10.0f64) {
        // Scaling all weights equally must not change mean/variance.
        let mut a = WeightedStats::new();
        let mut b = WeightedStats::new();
        for &x in &xs {
            a.push(x, 1.0);
            b.push(x, w);
        }
        prop_assert!((a.mean() - b.mean()).abs() < 1e-6 * (1.0 + a.mean().abs()));
        prop_assert!((a.variance() - b.variance()).abs() < 1e-5 * (1.0 + a.variance()));
    }

    #[test]
    fn pearson_in_unit_range(xs in finite_vec(50), ys in finite_vec(50)) {
        let n = xs.len().min(ys.len());
        if let Some(r) = pearson(&xs[..n], &ys[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn pearson_affine_invariance(xs in finite_vec(30), a in 0.1..5.0f64, b in -10.0..10.0f64) {
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((r - 1.0).abs() < 1e-6, "r={r}");
        }
    }

    #[test]
    fn spearman_in_unit_range(xs in finite_vec(40), ys in finite_vec(40)) {
        let n = xs.len().min(ys.len());
        if let Some(r) = spearman(&xs[..n], &ys[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn linear_fit_residuals_orthogonal(xs in finite_vec(30), ys in finite_vec(30)) {
        let n = xs.len().min(ys.len());
        if let Some(f) = linear_fit(&xs[..n], &ys[..n]) {
            // OLS property: residuals sum to ~0.
            let resid_sum: f64 = xs[..n]
                .iter()
                .zip(&ys[..n])
                .map(|(&x, &y)| y - (f.slope * x + f.intercept))
                .sum();
            prop_assert!(resid_sum.abs() < 1e-4 * n as f64 * (1.0 + f.intercept.abs() + f.slope.abs()) * 1e3);
        }
    }

    #[test]
    fn normal_cdf_monotone(mean in -10.0..10.0f64, sd in 0.01..10.0f64,
                           a in -50.0..50.0f64, b in -50.0..50.0f64) {
        let d = Normal::new(mean, sd);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
    }

    #[test]
    fn distributions_quantile_roundtrip(p in 0.01..0.99f64) {
        let candidates: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Normal::new(1.8, 0.16)),
            Box::new(LogNormal::new(0.5, 0.3)),
            Box::new(Gamma::new(2.0, 1.5)),
            Box::new(Gev::new(1.73, 0.133, -0.0534)),
            Box::new(Gev::new(0.0, 1.0, 0.3)),
        ];
        for d in candidates {
            let x = d.quantile(p);
            prop_assert!((d.cdf(x) - p).abs() < 1e-7, "p={p} x={x}");
        }
    }

    #[test]
    fn ecdf_quantile_monotone(xs in finite_vec(60), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let e = Ecdf::new(xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(e.quantile(lo) <= e.quantile(hi) + 1e-12);
    }

    #[test]
    fn ecdf_cdf_range(xs in finite_vec(60), probe in -1e6..1e6f64) {
        let e = Ecdf::new(xs);
        let c = e.cdf(probe);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn rng_below_always_in_range(seed in any::<u64>(), n in 1..1000u64) {
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(n) < n);
        }
    }

    #[test]
    fn rng_gamma_positive(seed in any::<u64>(), shape in 0.05..20.0f64, scale in 0.05..20.0f64) {
        let mut r = SimRng::new(seed);
        for _ in 0..20 {
            prop_assert!(r.gamma(shape, scale) > 0.0);
        }
    }

    #[test]
    fn rng_gev_on_support(seed in any::<u64>(), xi in -0.4..0.4f64) {
        let mut r = SimRng::new(seed);
        for _ in 0..50 {
            let x = r.gev(1.0, 0.5, xi);
            prop_assert!(x.is_finite());
            if xi > 1e-9 {
                prop_assert!(x >= 1.0 - 0.5 / xi - 1e-9);
            } else if xi < -1e-9 {
                prop_assert!(x <= 1.0 - 0.5 / xi + 1e-9);
            }
        }
    }

    #[test]
    fn age_weighted_mean_within_observed(days in prop::collection::vec((0.5..5.0f64, 0.0..1.0f64, 1.0..100.0f64), 1..20)) {
        let mut a = AgeWeighted::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (mean, sd, w) in &days {
            a.fold_day(*mean, *sd, *w, 0.9);
            lo = lo.min(*mean);
            hi = hi.max(*mean);
        }
        prop_assert!(a.mean() >= lo - 1e-9 && a.mean() <= hi + 1e-9);
        prop_assert!(a.stddev() >= 0.0);
    }

    #[test]
    fn timeseries_align_within_tolerance(
        ts_a in prop::collection::vec((0i64..100_000, -10.0..10.0f64), 1..40),
        ts_b in prop::collection::vec((0i64..100_000, -10.0..10.0f64), 1..40),
        tol in 0i64..5_000,
    ) {
        let a = TimeSeries::from_points(ts_a);
        let b = TimeSeries::from_points(ts_b);
        let pairs = a.align(&b, tol);
        prop_assert!(pairs.len() <= a.len());
        // Every emitted pair's values must exist in the inputs.
        for (va, vb) in &pairs {
            prop_assert!(a.points().iter().any(|&(_, v)| v == *va));
            prop_assert!(b.points().iter().any(|&(_, v)| v == *vb));
        }
    }

    #[test]
    fn timeseries_window_subset(pts in prop::collection::vec((0i64..10_000, -5.0..5.0f64), 0..50),
                                start in 0i64..10_000, len in 0i64..10_000) {
        let s = TimeSeries::from_points(pts);
        let w = s.window(start, start + len);
        prop_assert!(w.len() <= s.len());
        for &(t, _) in w.points() {
            prop_assert!(t >= start && t < start + len);
        }
    }
}
