//! Structured event tracing: a bounded ring of recent events plus a span
//! guard that records durations into a histogram on drop.
//!
//! Events are for low-frequency, post-mortem-worthy moments (an incident
//! fired, a spec generation published) — not per-sample noise. The ring
//! keeps the most recent [`DEFAULT_EVENT_CAPACITY`] entries and drops the
//! oldest beyond that, so a long run cannot grow memory without bound.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Default number of events retained by the ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the owning registry was created.
    pub at_us: u64,
    /// Short machine-readable kind, e.g. `"incident"` or `"spec_refresh"`.
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// Bounded ring buffer of recent events.
#[derive(Debug)]
pub(crate) struct EventRing {
    inner: Mutex<RingState>,
}

#[derive(Debug)]
struct RingState {
    buf: VecDeque<Event>,
    capacity: usize,
    /// Total events ever pushed, including ones the ring has dropped.
    total: u64,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> EventRing {
        EventRing {
            inner: Mutex::new(RingState {
                buf: VecDeque::with_capacity(capacity.min(64)),
                capacity: capacity.max(1),
                total: 0,
            }),
        }
    }

    pub(crate) fn push(&self, event: Event) {
        let mut state = self.inner.lock();
        if state.buf.len() == state.capacity {
            state.buf.pop_front();
        }
        state.buf.push_back(event);
        state.total += 1;
    }

    /// Snapshot of retained events, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub(crate) fn total(&self) -> u64 {
        self.inner.lock().total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: &str, n: u64) -> Event {
        Event {
            at_us: n,
            kind: kind.to_string(),
            detail: format!("event {n}"),
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev("t", i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].at_us, 2);
        assert_eq!(snap[2].at_us, 4);
        assert_eq!(ring.total(), 5);
    }

    #[test]
    fn empty_ring_snapshots_empty() {
        let ring = EventRing::new(8);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.total(), 0);
    }
}
