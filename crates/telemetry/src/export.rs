//! Exporters: Prometheus text format and JSON snapshots.
//!
//! The Prometheus exporter emits one `# TYPE` header per metric family and
//! one sample line per series, in deterministic (sorted) order.
//! Histograms export as summaries: `{quantile="0.5"|"0.95"|"0.99"}` lines
//! (only while non-empty — a quantile of nothing is undefined), plus
//! `_sum` and `_count`. Every emitted line matches
//! `^# |^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$`, which the CI smoke job
//! enforces; in particular metric names contain no digits and values are
//! never NaN/inf (non-finite sums are clamped to 0).

use std::fmt::Write as _;

use serde::{Number, Value};

use crate::registry::{Registry, SeriesKey};

/// Quantiles reported for every histogram.
pub const EXPORT_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote and newline must be escaped inside the quoted
/// value (an unescaped `"` in a job-name label corrupts the scrape).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Renders the full registry as Prometheus text exposition format.
pub(crate) fn prometheus_text(reg: &Registry) -> String {
    fn header(out: &mut String, last_family: &mut String, name: &str, kind: &str) {
        if last_family != name {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            name.clone_into(last_family);
        }
    }

    let mut out = String::new();
    let mut last_family = String::new();
    for ((name, labels), cell) in reg.counters.lock().iter() {
        header(&mut out, &mut last_family, name, "counter");
        let _ = writeln!(out, "{name}{} {}", label_block(labels, None), cell.get());
    }
    last_family.clear();
    for ((name, labels), cell) in reg.gauges.lock().iter() {
        header(&mut out, &mut last_family, name, "gauge");
        let _ = writeln!(
            out,
            "{name}{} {}",
            label_block(labels, None),
            finite(cell.get())
        );
    }
    last_family.clear();
    for ((name, labels), cell) in reg.histograms.lock().iter() {
        header(&mut out, &mut last_family, name, "summary");
        if cell.count() > 0 {
            for q in EXPORT_QUANTILES {
                if let Some(v) = cell.quantile(q) {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        label_block(labels, Some(("quantile", &format!("{q}")))),
                        finite(v)
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            label_block(labels, None),
            finite(cell.sum())
        );
        let _ = writeln!(
            out,
            "{name}_count{} {}",
            label_block(labels, None),
            cell.count()
        );
    }
    out
}

fn series_name(key: &SeriesKey) -> String {
    let (name, labels) = key;
    format!("{name}{}", label_block(labels, None))
}

/// Renders the full registry (metrics + recent events) as a JSON
/// [`Value`] tree suitable for `serde_json::to_string`.
pub(crate) fn json_snapshot(reg: &Registry) -> Value {
    let counters: Vec<(String, Value)> = reg
        .counters
        .lock()
        .iter()
        .map(|(key, cell)| {
            (
                series_name(key),
                Value::Number(Number::from_u64(cell.get())),
            )
        })
        .collect();
    let gauges: Vec<(String, Value)> = reg
        .gauges
        .lock()
        .iter()
        .map(|(key, cell)| (series_name(key), json_f64(cell.get())))
        .collect();
    let histograms: Vec<(String, Value)> = reg
        .histograms
        .lock()
        .iter()
        .map(|(key, cell)| {
            let mut fields = vec![
                (
                    "count".to_string(),
                    Value::Number(Number::from_u64(cell.count())),
                ),
                ("sum".to_string(), json_f64(cell.sum())),
            ];
            for q in EXPORT_QUANTILES {
                let label = format!("p{}", (q * 100.0).round() as u64);
                let v = cell.quantile(q).map(json_f64).unwrap_or(Value::Null);
                fields.push((label, v));
            }
            (series_name(key), Value::Object(fields))
        })
        .collect();
    let events: Vec<Value> = reg
        .events
        .snapshot()
        .into_iter()
        .map(|e| {
            Value::Object(vec![
                (
                    "at_us".to_string(),
                    Value::Number(Number::from_u64(e.at_us)),
                ),
                ("kind".to_string(), Value::String(e.kind)),
                ("detail".to_string(), Value::String(e.detail)),
            ])
        })
        .collect();

    Value::Object(vec![
        (
            "elapsed_us".to_string(),
            Value::Number(Number::from_u64(reg.elapsed_us())),
        ),
        ("counters".to_string(), Value::Object(counters)),
        ("gauges".to_string(), Value::Object(gauges)),
        ("histograms".to_string(), Value::Object(histograms)),
        ("events".to_string(), Value::Array(events)),
        (
            "events_total".to_string(),
            Value::Number(Number::from_u64(reg.events.total())),
        ),
    ])
}

fn json_f64(v: f64) -> Value {
    Number::from_f64(v)
        .map(Value::Number)
        .unwrap_or(Value::Null)
}

/// Renders a [`Value`] tree as compact JSON text.
///
/// The vendored `serde_json::to_string` is generic over `Serialize`,
/// which `Value` itself does not implement, so the exporter renders its
/// already-assembled tree directly.
pub(crate) fn render_json(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
