//! Fleet-wide telemetry for the CPI² reproduction: a lock-cheap metrics
//! registry, structured event tracing, and Prometheus/JSON exporters.
//!
//! CPI² itself is an observability system — the paper (§5) logs CPI
//! samples, suspected antagonists, and amelioration actions for offline
//! forensics. This crate gives the *reproduction* the same kind of
//! introspection: the agent, pipeline, simulator, and perf sampler all
//! publish metrics here so detection latency, ingest back-pressure, and
//! worker-pool stalls are visible instead of anecdotal.
//!
//! # Design
//!
//! The entry point is [`Telemetry`], a clone-cheap handle that is either
//! *enabled* (wrapping a shared [`registry`](crate::registry) behind an
//! `Arc`) or *disabled* (`Telemetry::disabled()`, the `Default`). Every
//! instrumented component accepts a `Telemetry` and resolves the metric
//! series it needs **once**, at construction, into cached [`Counter`],
//! [`Gauge`], and [`Histo`] handles. On the hot path an update through a
//! disabled handle is a single `Option` branch — no allocation, no lock,
//! no atomic — which is how the simulator keeps its tick loop within the
//! ≤ 2 % overhead budget when telemetry is off.
//!
//! Telemetry is strictly *observational*: nothing read from it feeds back
//! into simulation decisions, so enabling it cannot perturb determinism
//! (the parallelism-equivalence tests run with it enabled to prove this).
//! Durations that describe *simulated* behaviour (e.g. detection latency)
//! are recorded in sim-time microseconds and are therefore deterministic;
//! wall-clock durations (tick-phase timings) are real measurements and
//! naturally vary run to run.
//!
//! # Example
//!
//! ```
//! use cpi2_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! let ticks = tel.counter("cpi_sim_ticks_total", &[]);
//! let phase = tel.histogram("cpi_sim_tick_phase_duration_us", &[("phase", "machines")]);
//! ticks.inc();
//! phase.record(42.0);
//! tel.event("incident", || "victim job 3 capped".to_string());
//! let text = tel.prometheus_text().unwrap();
//! assert!(text.contains("cpi_sim_ticks_total 1"));
//! ```

#![warn(missing_docs)]

mod events;
mod export;
mod metrics;
mod registry;

use std::sync::Arc;

pub use events::{Event, DEFAULT_EVENT_CAPACITY};
pub use export::EXPORT_QUANTILES;
pub use metrics::{Counter, Gauge, HistTimer, Histo, HIST_BUCKETS};

use registry::Registry;

/// Clone-cheap handle to a telemetry registry; `Default` is disabled.
///
/// All clones of an enabled handle share one registry, so a component can
/// stash a clone and the exporter still sees its metrics. See the crate
/// docs for the usage pattern.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Registry>>);

impl Telemetry {
    /// A live handle backed by a fresh registry.
    pub fn enabled() -> Telemetry {
        Telemetry(Some(Arc::new(Registry::new())))
    }

    /// A no-op handle: every metric it vends is inert.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Resolves (registering on first use) a monotonic counter series.
    ///
    /// Call once at construction and cache the returned handle; label
    /// pairs are canonicalised by sorting on the label key.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.0 {
            Some(reg) => reg.counter(name, labels),
            None => Counter::default(),
        }
    }

    /// Resolves (registering on first use) a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.0 {
            Some(reg) => reg.gauge(name, labels),
            None => Gauge::default(),
        }
    }

    /// Resolves (registering on first use) a log-bucketed histogram
    /// series with p50/p95/p99 export.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histo {
        match &self.0 {
            Some(reg) => reg.histogram(name, labels),
            None => Histo::default(),
        }
    }

    /// Records a structured event into the bounded recent-events ring.
    ///
    /// The detail string is built lazily via the closure, so a disabled
    /// handle pays only the branch — no formatting, no allocation.
    pub fn event<F: FnOnce() -> String>(&self, kind: &str, detail: F) {
        if let Some(reg) = &self.0 {
            reg.events.push(Event {
                at_us: reg.elapsed_us(),
                kind: kind.to_string(),
                detail: detail(),
            });
        }
    }

    /// Snapshot of retained events, oldest first (empty when disabled).
    pub fn recent_events(&self) -> Vec<Event> {
        match &self.0 {
            Some(reg) => reg.events.snapshot(),
            None => Vec::new(),
        }
    }

    /// Total events ever recorded, including those evicted from the ring.
    pub fn events_total(&self) -> u64 {
        self.0.as_ref().map_or(0, |reg| reg.events.total())
    }

    /// Microseconds since this registry was created (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.0.as_ref().map_or(0, |reg| reg.elapsed_us())
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, deterministically ordered. `None` when disabled.
    pub fn prometheus_text(&self) -> Option<String> {
        self.0.as_ref().map(|reg| export::prometheus_text(reg))
    }

    /// Renders metrics plus recent events as a JSON string. `None` when
    /// disabled.
    pub fn json_snapshot(&self) -> Option<String> {
        self.0
            .as_ref()
            .map(|reg| export::render_json(&export::json_snapshot(reg)))
    }
}

/// `#[serde(with = "cpi2_telemetry::serde_stub")]` support: telemetry
/// handles are runtime wiring, not state, so they serialize as `null` and
/// deserialize to their `Default` (disabled). Components whose structs
/// derive the vendored `Serialize`/`Deserialize` use this for any field
/// holding telemetry handles.
pub mod serde_stub {
    use serde::{Error, Value};

    /// Serializes any value as `null`.
    pub fn to_value<T>(_v: &T) -> Value {
        Value::Null
    }

    /// Deserializes any value (including `null` / missing) as `Default`.
    pub fn from_value<T: Default>(_v: &Value) -> Result<T, Error> {
        Ok(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_fully_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let c = tel.counter("cpi_x_total", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        let mut called = false;
        tel.event("x", || {
            called = true;
            String::new()
        });
        assert!(!called, "event detail closure must not run when disabled");
        assert!(tel.recent_events().is_empty());
        assert_eq!(tel.prometheus_text(), None);
        assert_eq!(tel.json_snapshot(), None);
    }

    #[test]
    fn clones_share_a_registry() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        tel.counter("cpi_shared_total", &[]).add(5);
        let text = other.prometheus_text().unwrap();
        assert!(text.contains("cpi_shared_total 5"), "{text}");
    }

    #[test]
    fn prometheus_export_matches_ci_grammar() {
        let tel = Telemetry::enabled();
        tel.counter("cpi_a_total", &[("action", "hard_cap")]).inc();
        tel.gauge("cpi_b", &[]).set(0.75);
        let h = tel.histogram("cpi_c_us", &[("phase", "machines")]);
        for i in 0..50 {
            h.record(i as f64);
        }
        // Empty histogram: must emit _sum/_count but no quantile lines.
        tel.histogram("cpi_d_us", &[]);
        let text = tel.prometheus_text().unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let ok = line.starts_with("# ") || sample_line_ok(line);
            assert!(ok, "line fails CI grammar: {line:?}");
        }
        assert!(text.contains("cpi_a_total{action=\"hard_cap\"} 1"));
        assert!(text.contains("cpi_c_us{phase=\"machines\",quantile=\"0.5\"}"));
        assert!(text.contains("cpi_c_us_count{phase=\"machines\"} 50"));
        assert!(text.contains("cpi_d_us_count 0"));
        assert!(
            !text.contains("cpi_d_us{"),
            "empty histo must not emit quantiles"
        );
    }

    /// Mirror of the CI regex `^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$`.
    fn sample_line_ok(line: &str) -> bool {
        let (name_part, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return false,
        };
        if value.is_empty()
            || !value
                .chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            return false;
        }
        let name = match name_part.split_once('{') {
            Some((n, rest)) => {
                if !rest.ends_with('}') || rest[..rest.len() - 1].contains('}') {
                    return false;
                }
                n
            }
            None => name_part,
        };
        !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '_')
    }

    #[test]
    fn label_values_are_escaped_per_exposition_format() {
        // Regression: a job name containing `"`, `\` or a newline used to
        // be emitted verbatim, corrupting the scrape.
        let tel = Telemetry::enabled();
        tel.counter("cpi_esc_total", &[("job", "we\"ird\\name\nx")])
            .inc();
        let text = tel.prometheus_text().unwrap();
        assert!(
            text.contains(r#"cpi_esc_total{job="we\"ird\\name\nx"} 1"#),
            "{text}"
        );
        // Every emitted line must still satisfy the CI scrape grammar.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || sample_line_ok(line),
                "line fails CI grammar: {line:?}"
            );
        }
    }

    #[test]
    fn json_snapshot_contains_metrics_and_events() {
        let tel = Telemetry::enabled();
        tel.counter("cpi_j_total", &[]).add(3);
        tel.histogram("cpi_j_us", &[]).record(10.0);
        tel.event("incident", || "detail".to_string());
        let json = tel.json_snapshot().unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"cpi_j_total\":3"), "{json}");
        assert!(json.contains("\"kind\":\"incident\""), "{json}");
        assert!(json.contains("\"detail\":\"detail\""), "{json}");
        assert!(json.contains("\"events_total\":1"), "{json}");
    }

    #[test]
    fn serde_stub_round_trip() {
        let v = serde_stub::to_value(&Telemetry::enabled());
        assert_eq!(v, serde::Value::Null);
        let t: Telemetry = serde_stub::from_value(&v).unwrap();
        assert!(!t.is_enabled());
    }

    #[test]
    fn event_ring_total_survives_eviction() {
        let tel = Telemetry::enabled();
        for i in 0..(DEFAULT_EVENT_CAPACITY + 10) {
            tel.event("tick", || format!("{i}"));
        }
        assert_eq!(tel.recent_events().len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(tel.events_total(), (DEFAULT_EVENT_CAPACITY + 10) as u64);
    }
}
