//! Metric cells and the cheap handles components hold onto.
//!
//! A component asks [`crate::Telemetry`] for a handle once (at
//! construction) and then updates through it on the hot path. Handles are
//! `Option<Arc<Cell>>` under the hood: with telemetry disabled the option
//! is `None` and every update is a single branch — no allocation, no
//! atomics, no lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log-spaced histogram buckets. Bucket 0 covers `[0, 1)`;
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i)`; the last bucket saturates.
pub const HIST_BUCKETS: usize = 64;

/// Backing cell of a monotonic counter.
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    pub(crate) fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Backing cell of a gauge (an `f64` stored as bits).
#[derive(Debug)]
pub(crate) struct GaugeCell {
    bits: AtomicU64,
}

impl Default for GaugeCell {
    fn default() -> Self {
        GaugeCell {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl GaugeCell {
    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Backing cell of a log-bucketed histogram.
///
/// Updates are lock-free: one atomic add on the bucket, one on the count,
/// and a CAS loop folding the observation into the running sum.
#[derive(Debug)]
pub(crate) struct HistoCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for HistoCell {
    fn default() -> Self {
        HistoCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// Index of the log bucket holding `v` (negatives and NaN land in 0).
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1.0 {
        return 0;
    }
    ((v.log2().floor() as usize) + 1).min(HIST_BUCKETS - 1)
}

/// `[lo, hi)` edges of bucket `i`.
pub(crate) fn bucket_edges(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 1.0)
    } else {
        (2f64.powi(i as i32 - 1), 2f64.powi(i as i32))
    }
}

impl HistoCell {
    pub(crate) fn record(&self, v: f64) {
        // `bucket_index` clamps to the last bucket, but prove it locally:
        // a histogram write must never be able to panic an agent tick.
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() { v } else { 0.0 };
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub(crate) fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// `(lo, hi, count)` rows for [`cpi2_stats::histogram::bucket_quantile`].
    pub(crate) fn bucket_rows(&self) -> Vec<(f64, f64, u64)> {
        (0..HIST_BUCKETS)
            .map(|i| {
                let (lo, hi) = bucket_edges(i);
                (lo, hi, self.buckets[i].load(Ordering::Relaxed))
            })
            .collect()
    }

    /// Quantile readout over the log buckets; `None` while empty.
    pub(crate) fn quantile(&self, q: f64) -> Option<f64> {
        cpi2_stats::histogram::bucket_quantile(&self.bucket_rows(), q)
    }
}

/// A monotonic counter handle. Clone-cheap; all clones share one cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCell>>);

impl Counter {
    /// Whether updates actually land anywhere.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding the latest `f64` value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCell>>);

impl Gauge {
    /// Whether updates actually land anywhere.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.bits.load(Ordering::Relaxed)))
    }
}

/// A log-bucketed histogram handle with p50/p95/p99 readout.
#[derive(Debug, Clone, Default)]
pub struct Histo(pub(crate) Option<Arc<HistoCell>>);

impl Histo {
    /// Whether updates actually land anywhere. Hot paths use this to skip
    /// even the clock read that would feed [`Histo::record`].
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.record(v);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count())
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.sum())
    }

    /// Quantile readout; `None` while empty (or disabled).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.0.as_ref().and_then(|c| c.quantile(q))
    }

    /// Starts a wall-clock timer that records elapsed microseconds into
    /// this histogram when stopped or dropped. Free when disabled (the
    /// clock is never read).
    pub fn timer(&self) -> HistTimer {
        HistTimer {
            start: self.0.as_ref().map(|_| Instant::now()),
            histo: self.clone(),
        }
    }
}

/// Guard returned by [`Histo::timer`].
#[derive(Debug)]
pub struct HistTimer {
    start: Option<Instant>,
    histo: Histo,
}

impl HistTimer {
    /// Stops the timer now, recording the elapsed microseconds.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(start) = self.start.take() {
            self.histo.record(start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.enabled());
        let g = Gauge::default();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histo::default();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        h.timer().stop();
    }

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.99), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.99), 1);
        assert_eq!(bucket_index(2.0), 2);
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
    }

    #[test]
    fn histogram_cell_quantiles() {
        let cell = HistoCell::default();
        for _ in 0..100 {
            cell.record(3.0); // bucket [2, 4)
        }
        assert_eq!(cell.count(), 100);
        assert!((cell.sum() - 300.0).abs() < 1e-9);
        let p50 = cell.quantile(0.5).unwrap();
        assert!((2.0..=4.0).contains(&p50), "p50={p50}");
    }
}
