//! The metric registry backing a [`crate::Telemetry`] handle.
//!
//! Metrics are keyed by `(name, sorted label pairs)` in `BTreeMap`s so the
//! export order is deterministic regardless of registration order. The
//! registry is only locked at registration and export time — hot-path
//! updates go straight to the shared atomic cells.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::events::EventRing;
use crate::metrics::{Counter, CounterCell, Gauge, GaugeCell, Histo, HistoCell};

/// Key of one metric series: name plus label pairs sorted by label key.
pub(crate) type SeriesKey = (String, Vec<(String, String)>);

/// Shared state behind an enabled [`crate::Telemetry`] handle.
#[derive(Debug)]
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<SeriesKey, Arc<CounterCell>>>,
    pub(crate) gauges: Mutex<BTreeMap<SeriesKey, Arc<GaugeCell>>>,
    pub(crate) histograms: Mutex<BTreeMap<SeriesKey, Arc<HistoCell>>>,
    pub(crate) events: EventRing,
    /// Creation instant; event timestamps are microseconds since this.
    pub(crate) started: Instant,
}

impl Registry {
    pub(crate) fn new() -> Registry {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: EventRing::new(crate::events::DEFAULT_EVENT_CAPACITY),
            started: Instant::now(),
        }
    }

    pub(crate) fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = series_key(name, labels);
        let cell = Arc::clone(self.counters.lock().entry(key).or_default());
        Counter(Some(cell))
    }

    pub(crate) fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = series_key(name, labels);
        let cell = Arc::clone(self.gauges.lock().entry(key).or_default());
        Gauge(Some(cell))
    }

    pub(crate) fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histo {
        let key = series_key(name, labels);
        let cell = Arc::clone(self.histograms.lock().entry(key).or_default());
        Histo(Some(cell))
    }

    pub(crate) fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// Builds the canonical series key: labels sorted by key name so that
/// `[("b","2"),("a","1")]` and `[("a","1"),("b","2")]` are one series.
pub(crate) fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut pairs: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    pairs.sort();
    (name.to_string(), pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_series_shares_a_cell() {
        let reg = Registry::new();
        let a = reg.counter("cpi_test_total", &[("k", "v")]);
        let b = reg.counter("cpi_test_total", &[("k", "v")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        let a = reg.gauge("cpi_g", &[("b", "2"), ("a", "1")]);
        let b = reg.gauge("cpi_g", &[("a", "1"), ("b", "2")]);
        a.set(7.5);
        assert_eq!(b.get(), 7.5);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let reg = Registry::new();
        let a = reg.counter("cpi_c", &[("x", "1")]);
        let b = reg.counter("cpi_c", &[("x", "2")]);
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }
}
