//! Antagonist task models.
//!
//! The interference sources the paper's case studies feature: bursty
//! cache thrashers, memory-bandwidth hogs, the lame-duck replayer of
//! Case 5 (thread count 8 → 80 under capping → 2 afterwards), and the
//! turn-taking *group* antagonist that §4.2 admits its per-task
//! correlation handles poorly.

use cpi2_sim::{
    ResourceProfile, SimDuration, SimTime, TaskAction, TaskDemand, TaskModel, TickOutcome,
};
use cpi2_stats::rng::SimRng;

/// A bursty cache thrasher: alternates full-bore streaming sweeps with
/// quiet stretches, on a minute-scale period.
#[derive(Debug)]
pub struct CacheThrasher {
    /// CPU demand during a burst, cores.
    pub burst_cpu: f64,
    /// Burst length, ticks.
    pub on_ticks: u32,
    /// Quiet length, ticks.
    pub off_ticks: u32,
    phase: u32,
    rng: SimRng,
    footprint_mb: f64,
}

impl CacheThrasher {
    /// Creates a thrasher with the given burst shape.
    pub fn new(burst_cpu: f64, on_ticks: u32, off_ticks: u32, seed: u64) -> Self {
        assert!(on_ticks > 0 && off_ticks > 0, "phases must be non-empty");
        let mut rng = SimRng::derive(seed, 0x7452);
        let phase = rng.below((on_ticks + off_ticks) as u64) as u32;
        CacheThrasher {
            burst_cpu,
            on_ticks,
            off_ticks,
            phase,
            rng,
            footprint_mb: 32.0,
        }
    }

    /// Overrides the cache footprint (default 32 MB) — smaller footprints
    /// make milder antagonists.
    pub fn with_footprint(mut self, mb: f64) -> Self {
        assert!(mb >= 0.0, "footprint must be non-negative");
        self.footprint_mb = mb;
        self
    }

    fn bursting(&self) -> bool {
        self.phase < self.on_ticks
    }
}

impl TaskModel for CacheThrasher {
    fn profile(&self) -> ResourceProfile {
        ResourceProfile {
            base_cpi: 2.2,
            cache_mb: self.footprint_mb,
            mpki_solo: 12.0,
            cache_sensitivity: 0.1,
            cpi_noise: 0.05,
        }
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        let want = if self.bursting() {
            self.burst_cpu * (1.0 + 0.05 * self.rng.normal())
        } else {
            0.02
        };
        self.phase = (self.phase + 1) % (self.on_ticks + self.off_ticks);
        TaskDemand {
            cpu_want: want.max(0.0),
            threads: 8,
        }
    }
}

/// A memory-bandwidth hog: a small working set that *fits* in its cache
/// slice but streams through it at an enormous miss rate, saturating the
/// memory controllers. Unlike [`CacheThrasher`] it barely evicts anyone's
/// cache — victims suffer purely through bandwidth queueing, the second
/// interference channel of the model.
#[derive(Debug)]
pub struct MemoryBandwidthHog {
    /// Steady CPU demand, cores.
    pub cpu: f64,
    rng: SimRng,
}

impl MemoryBandwidthHog {
    /// Creates a hog with the given steady demand.
    pub fn new(cpu: f64, seed: u64) -> Self {
        MemoryBandwidthHog {
            cpu,
            rng: SimRng::derive(seed, 0xB17),
        }
    }
}

impl TaskModel for MemoryBandwidthHog {
    fn profile(&self) -> ResourceProfile {
        ResourceProfile {
            base_cpi: 3.0,
            // Tiny footprint: occupancy-based eviction is negligible...
            cache_mb: 0.5,
            // ...but every access misses (non-temporal streaming).
            mpki_solo: 40.0,
            cache_sensitivity: 0.0,
            cpi_noise: 0.04,
        }
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        TaskDemand {
            cpu_want: (self.cpu * (1.0 + 0.05 * self.rng.normal())).max(0.0),
            threads: 4,
        }
    }
}

/// The Case-5 "replayer" batch job with lame-duck behaviour.
///
/// Normal execution uses ~8 threads. While hard-capped it spawns workers
/// frantically (thread count climbs toward 80); once the cap lifts it
/// enters a self-induced lame-duck mode (2 threads, minimal CPU) for tens
/// of minutes before reverting to normal.
#[derive(Debug)]
pub struct LameDuckReplayer {
    /// Normal CPU demand, cores.
    pub normal_cpu: f64,
    /// Lame-duck duration after a cap lifts, ticks.
    pub lame_ticks: u32,
    state: ReplayerState,
    threads: u32,
    rng: SimRng,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplayerState {
    Normal,
    Capped,
    LameDuck(u32),
}

impl LameDuckReplayer {
    /// Creates a replayer with the given steady demand.
    pub fn new(normal_cpu: f64, seed: u64) -> Self {
        LameDuckReplayer {
            normal_cpu,
            lame_ticks: 1800, // "tens of minutes".
            state: ReplayerState::Normal,
            threads: 8,
            rng: SimRng::derive(seed, 0x1A3E),
        }
    }

    /// Current thread count (the Fig. 12b series).
    pub fn threads(&self) -> u32 {
        self.threads
    }
}

impl TaskModel for LameDuckReplayer {
    fn profile(&self) -> ResourceProfile {
        ResourceProfile {
            base_cpi: 1.9,
            cache_mb: 20.0,
            mpki_solo: 7.0,
            cache_sensitivity: 0.3,
            cpi_noise: 0.04,
        }
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        let cpu_want = match self.state {
            ReplayerState::Normal => self.normal_cpu * (1.0 + 0.05 * self.rng.normal()),
            // While capped it *wants* even more (all those new threads).
            ReplayerState::Capped => self.normal_cpu * 1.5,
            ReplayerState::LameDuck(_) => 0.1,
        };
        TaskDemand {
            cpu_want: cpu_want.max(0.0),
            threads: self.threads,
        }
    }

    fn observe(&mut self, _now: SimTime, outcome: &TickOutcome) -> TaskAction {
        match self.state {
            ReplayerState::Normal => {
                if outcome.capped {
                    self.state = ReplayerState::Capped;
                }
                self.threads = 8;
            }
            ReplayerState::Capped => {
                if outcome.capped {
                    // Spawn more workers trying to offload (ramp to ~80).
                    self.threads = (self.threads + 4).min(80);
                } else {
                    self.state = ReplayerState::LameDuck(self.lame_ticks);
                    self.threads = 2;
                }
            }
            ReplayerState::LameDuck(left) => {
                if outcome.capped {
                    self.state = ReplayerState::Capped;
                } else if left <= 1 {
                    self.state = ReplayerState::Normal;
                    self.threads = 8;
                } else {
                    self.state = ReplayerState::LameDuck(left - 1);
                }
            }
        }
        TaskAction::Continue
    }
}

/// A *group* antagonist: `n` tasks that take turns filling the cache, so
/// no single task correlates strongly with the victim's CPI — §4.2's
/// acknowledged weakness ("a set of tasks that took turns filling the
/// cache"). Create one [`TurnTakingMember`] per task with distinct
/// `slot` values.
#[derive(Debug)]
pub struct TurnTakingMember {
    /// This member's slot in the rotation.
    pub slot: u32,
    /// Total members in the group.
    pub group_size: u32,
    /// Ticks each member stays active before handing over.
    pub slot_ticks: u32,
    /// CPU demand while it is this member's turn, cores.
    pub active_cpu: f64,
    rng: SimRng,
}

impl TurnTakingMember {
    /// Creates one member of a turn-taking group.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= group_size` or `slot_ticks == 0`.
    pub fn new(slot: u32, group_size: u32, slot_ticks: u32, active_cpu: f64, seed: u64) -> Self {
        assert!(slot < group_size, "slot out of range");
        assert!(slot_ticks > 0, "slot_ticks must be positive");
        TurnTakingMember {
            slot,
            group_size,
            slot_ticks,
            active_cpu,
            rng: SimRng::derive(seed, 0x7u64.wrapping_add(slot as u64)),
        }
    }

    fn my_turn(&self, now: SimTime) -> bool {
        let tick = now.as_us() / 1_000_000;
        let round = (tick / self.slot_ticks as i64) as u64;
        (round % self.group_size as u64) as u32 == self.slot
    }
}

impl TaskModel for TurnTakingMember {
    fn profile(&self) -> ResourceProfile {
        ResourceProfile {
            base_cpi: 2.1,
            cache_mb: 30.0,
            mpki_solo: 11.0,
            cache_sensitivity: 0.1,
            cpi_noise: 0.05,
        }
    }

    fn demand(&mut self, now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        let want = if self.my_turn(now) {
            self.active_cpu * (1.0 + 0.05 * self.rng.normal())
        } else {
            0.02
        };
        TaskDemand {
            cpu_want: want.max(0.0),
            threads: 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(capped: bool) -> TickOutcome {
        TickOutcome {
            cpu_granted: if capped { 0.1 } else { 3.0 },
            capped,
            cpi: 2.0,
            instructions: 1e9,
            l3_misses: 1e6,
        }
    }

    #[test]
    fn thrasher_alternates() {
        let mut t = CacheThrasher::new(6.0, 60, 60, 1);
        let mut rng = SimRng::new(0);
        let wants: Vec<f64> = (0..240)
            .map(|i| {
                t.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng)
                    .cpu_want
            })
            .collect();
        let on = wants.iter().filter(|&&w| w > 3.0).count();
        assert!((100..=140).contains(&on), "on={on}");
    }

    #[test]
    fn replayer_thread_lifecycle() {
        // The Fig. 12b shape: 8 → (capped) up to 80 → (released) 2 → 8.
        let mut r = LameDuckReplayer::new(3.0, 1);
        r.lame_ticks = 20;
        let mut rng = SimRng::new(0);
        let dt = SimDuration::from_secs(1);

        // Normal.
        r.demand(SimTime::from_secs(0), dt, &mut rng);
        r.observe(SimTime::from_secs(0), &outcome(false));
        assert_eq!(r.threads(), 8);

        // Capped for 30 ticks: thread count climbs.
        for i in 1..=30 {
            r.demand(SimTime::from_secs(i), dt, &mut rng);
            r.observe(SimTime::from_secs(i), &outcome(true));
        }
        assert!(r.threads() > 60, "threads={}", r.threads());

        // Cap lifts: lame duck at 2 threads.
        r.demand(SimTime::from_secs(31), dt, &mut rng);
        r.observe(SimTime::from_secs(31), &outcome(false));
        assert_eq!(r.threads(), 2);
        let d = r.demand(SimTime::from_secs(32), dt, &mut rng);
        assert!(d.cpu_want < 0.2);

        // After the lame-duck period: back to normal.
        for i in 32..60 {
            r.demand(SimTime::from_secs(i), dt, &mut rng);
            r.observe(SimTime::from_secs(i), &outcome(false));
        }
        assert_eq!(r.threads(), 8);
    }

    #[test]
    fn turn_taking_members_never_overlap() {
        let mut members: Vec<TurnTakingMember> = (0..4)
            .map(|s| TurnTakingMember::new(s, 4, 60, 5.0, 9))
            .collect();
        let mut rng = SimRng::new(0);
        for i in 0..480 {
            let now = SimTime::from_secs(i);
            let mut active = 0;
            for m in members.iter_mut() {
                if m.demand(now, SimDuration::from_secs(1), &mut rng).cpu_want > 1.0 {
                    active += 1;
                }
            }
            assert_eq!(active, 1, "tick {i}: exactly one member active");
        }
    }

    #[test]
    fn turn_taking_rotation_covers_all() {
        let m0 = TurnTakingMember::new(0, 3, 10, 5.0, 1);
        let mut turns = [false; 3];
        for i in 0..90 {
            let now = SimTime::from_secs(i);
            for (s, turn) in turns.iter_mut().enumerate() {
                let m = TurnTakingMember::new(s as u32, 3, 10, 5.0, 1);
                if m.my_turn(now) {
                    *turn = true;
                }
            }
        }
        let _ = m0;
        assert!(turns.iter().all(|&t| t));
    }

    #[test]
    #[should_panic]
    fn turn_taking_rejects_bad_slot() {
        TurnTakingMember::new(5, 4, 10, 1.0, 0);
    }
}

#[cfg(test)]
mod membw_tests {
    use super::*;
    use cpi2_sim::interference::{self, InterferenceParams, TaskLoad};
    use cpi2_sim::Platform;

    #[test]
    fn hurts_through_bandwidth_not_cache() {
        let platform = Platform::westmere();
        let params = InterferenceParams::default();
        let victim = TaskLoad {
            activity: 2.0,
            profile: ResourceProfile::cache_heavy(),
        };
        let hog_profile = MemoryBandwidthHog::new(8.0, 1).profile();
        let hog = TaskLoad {
            activity: 8.0,
            profile: hog_profile,
        };
        let (alone, _) = interference::compute(&platform, &[victim], &params);
        let (together, summary) = interference::compute(&platform, &[victim, hog], &params);
        // The victim's cache is essentially intact (hog footprint 0.5 MB)...
        assert!(
            together[0].cache_retained > 0.95,
            "retained {}",
            together[0].cache_retained
        );
        // ...but the memory channel saturates, inflating victim CPI.
        // (The equilibrium rho is self-limiting: queueing slows the hog
        // itself, so utilization settles well below saturation.)
        assert!(
            summary.mem_utilization > 0.35,
            "rho {}",
            summary.mem_utilization
        );
        assert!(
            together[0].cpi > alone[0].cpi * 1.05,
            "bandwidth channel: {} -> {}",
            alone[0].cpi,
            together[0].cpi
        );
    }

    #[test]
    fn demand_is_steady() {
        let mut h = MemoryBandwidthHog::new(4.0, 2);
        let mut rng = SimRng::new(0);
        for i in 0..100 {
            let d = h.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            assert!((3.0..5.0).contains(&d.cpu_want), "want {}", d.cpu_want);
        }
    }
}
