//! Batch workloads: throughput-oriented jobs with phase behaviour.
//!
//! Covers the batch jobs of the case studies — video processing (Case 1),
//! scientific simulation (Case 4), the lame-duck replayer (Case 5) — plus
//! the generic transaction-counting batch job of Fig. 2, whose TPS tracks
//! IPS with r ≈ 0.97.

use cpi2_sim::{
    ResourceProfile, SimDuration, SimTime, TaskAction, TaskDemand, TaskModel, TickOutcome,
};
use cpi2_stats::rng::SimRng;

/// A phase-structured batch task: alternates busy bursts and quieter
/// stretches, with Pareto-ish burst lengths.
#[derive(Debug)]
pub struct BatchTask {
    profile: ResourceProfile,
    /// CPU demand while busy, cores.
    busy_cpu: f64,
    /// CPU demand while quiet, cores.
    quiet_cpu: f64,
    /// Mean busy-phase length, ticks.
    busy_len: f64,
    /// Mean quiet-phase length, ticks.
    quiet_len: f64,
    /// Instructions per application transaction.
    instr_per_txn: f64,
    threads: u32,
    rng: SimRng,
    busy: bool,
    phase_left: u32,
    /// Slowly wandering per-transaction cost multiplier: real transaction
    /// mixes drift, which is why the paper's Fig. 2 shows r ≈ 0.97 between
    /// TPS and IPS rather than exactly 1.
    txn_cost_factor: f64,
}

impl BatchTask {
    /// A video-processing task (Case 1's culprit): long busy phases,
    /// streaming memory behaviour, big cache footprint.
    pub fn video_processing(seed: u64) -> Self {
        BatchTask::new(
            ResourceProfile {
                base_cpi: 2.0,
                cache_mb: 28.0,
                mpki_solo: 9.0,
                cache_sensitivity: 0.2,
                cpi_noise: 0.04,
            },
            6.0,
            0.2,
            300.0,
            120.0,
            8,
            1e8,
            seed,
        )
    }

    /// A scientific-simulation task (Case 4's culprit): compute-heavy with
    /// a large resident set.
    pub fn scientific_simulation(seed: u64) -> Self {
        BatchTask::new(
            ResourceProfile {
                base_cpi: 1.2,
                cache_mb: 16.0,
                mpki_solo: 4.0,
                cache_sensitivity: 0.5,
                cpi_noise: 0.03,
            },
            4.0,
            1.0,
            600.0,
            60.0,
            16,
            2e8,
            seed,
        )
    }

    /// A compilation task: bursty, moderate footprint.
    pub fn compilation(seed: u64) -> Self {
        BatchTask::new(
            ResourceProfile {
                base_cpi: 1.1,
                cache_mb: 3.0,
                mpki_solo: 1.0,
                cache_sensitivity: 0.8,
                cpi_noise: 0.05,
            },
            3.0,
            0.3,
            60.0,
            30.0,
            12,
            5e7,
            seed,
        )
    }

    /// A generic transaction-processing batch task — the Fig. 2 workload.
    pub fn transactional(seed: u64) -> Self {
        BatchTask::new(
            ResourceProfile {
                base_cpi: 1.5,
                cache_mb: 5.0,
                mpki_solo: 2.0,
                cache_sensitivity: 1.0,
                cpi_noise: 0.03,
            },
            2.0,
            1.0,
            120.0,
            40.0,
            8,
            1e7,
            seed,
        )
    }

    /// Fully parameterized constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        profile: ResourceProfile,
        busy_cpu: f64,
        quiet_cpu: f64,
        busy_len: f64,
        quiet_len: f64,
        threads: u32,
        instr_per_txn: f64,
        seed: u64,
    ) -> Self {
        profile.validate().expect("valid profile");
        assert!(
            busy_cpu >= quiet_cpu && quiet_cpu >= 0.0,
            "cpu levels inconsistent"
        );
        assert!(instr_per_txn > 0.0, "instr_per_txn must be positive");
        let mut rng = SimRng::derive(seed, 0xBA7C4);
        let first = rng.exponential(1.0 / busy_len.max(1.0)).ceil() as u32;
        BatchTask {
            profile,
            busy_cpu,
            quiet_cpu,
            busy_len,
            quiet_len,
            instr_per_txn,
            threads,
            rng,
            busy: true,
            phase_left: first.max(1),
            txn_cost_factor: 1.0,
        }
    }
}

impl TaskModel for BatchTask {
    fn profile(&self) -> ResourceProfile {
        self.profile
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        if self.phase_left == 0 {
            self.busy = !self.busy;
            let mean = if self.busy {
                self.busy_len
            } else {
                self.quiet_len
            };
            self.phase_left = self.rng.exponential(1.0 / mean.max(1.0)).ceil().max(1.0) as u32;
        }
        self.phase_left -= 1;
        let base = if self.busy {
            self.busy_cpu
        } else {
            self.quiet_cpu
        };
        TaskDemand {
            cpu_want: (base * (1.0 + 0.05 * self.rng.normal())).max(0.0),
            threads: self.threads,
        }
    }

    fn observe(&mut self, _now: SimTime, _outcome: &TickOutcome) -> TaskAction {
        // Random walk of the transaction mix, mean-reverting around 1.
        let step = 0.01 * self.rng.normal() - 0.02 * (self.txn_cost_factor - 1.0);
        self.txn_cost_factor = (self.txn_cost_factor + step).clamp(0.7, 1.3);
        TaskAction::Continue
    }

    fn transactions(&self, outcome: &TickOutcome, _dt: SimDuration) -> Option<f64> {
        Some(outcome.instructions / (self.instr_per_txn * self.txn_cost_factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_stats::correlation::pearson;

    fn drive_demand(task: &mut BatchTask, n: usize) -> Vec<f64> {
        let mut rng = SimRng::new(0);
        (0..n)
            .map(|i| {
                task.demand(
                    SimTime::from_secs(i as i64),
                    SimDuration::from_secs(1),
                    &mut rng,
                )
                .cpu_want
            })
            .collect()
    }

    #[test]
    fn phases_alternate() {
        let mut t = BatchTask::video_processing(1);
        let wants = drive_demand(&mut t, 5_000);
        let busy = wants.iter().filter(|&&w| w > 3.0).count();
        let quiet = wants.iter().filter(|&&w| w < 1.0).count();
        assert!(busy > 1_000, "busy={busy}");
        assert!(quiet > 200, "quiet={quiet}");
    }

    #[test]
    fn tps_tracks_ips() {
        // Fig. 2's property: TPS and IPS correlate ~0.97.
        let t = BatchTask::transactional(2);
        let mut rng = SimRng::new(3);
        let mut ips = Vec::new();
        let mut tps = Vec::new();
        for _ in 0..500 {
            let instr = 1e9 * (1.0 + rng.f64());
            let o = TickOutcome {
                cpu_granted: 2.0,
                capped: false,
                cpi: 1.5,
                instructions: instr,
                l3_misses: 1e5,
            };
            ips.push(instr);
            tps.push(t.transactions(&o, SimDuration::from_secs(1)).unwrap());
        }
        let r = pearson(&ips, &tps).unwrap();
        assert!(r > 0.99, "r={r}");
    }

    #[test]
    fn canned_profiles_validate() {
        for t in [
            BatchTask::video_processing(1),
            BatchTask::scientific_simulation(2),
            BatchTask::compilation(3),
            BatchTask::transactional(4),
        ] {
            t.profile().validate().unwrap();
        }
    }

    #[test]
    fn demand_never_negative() {
        let mut t = BatchTask::compilation(5);
        for w in drive_demand(&mut t, 2_000) {
            assert!(w >= 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_inconsistent_cpu_levels() {
        BatchTask::new(
            ResourceProfile::compute_bound(),
            1.0,
            2.0, // quiet > busy
            10.0,
            10.0,
            1,
            1e6,
            0,
        );
    }
}
