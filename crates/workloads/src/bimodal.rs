//! The Case-3 bimodal service: self-inflicted CPI swings.
//!
//! §6.1 Case 3: a front-end web service whose CPI fluctuated between ~3
//! and ~10 with *no* antagonist — "high CPI corresponds to periods of low
//! CPU usage, and vice versa. This pattern turns out to be normal for this
//! application." The minimum-CPU-usage filter of §4.1 exists precisely to
//! suppress this false alarm.

use cpi2_sim::{ResourceProfile, SimDuration, SimTime, TaskDemand, TaskModel};
use cpi2_stats::rng::SimRng;

/// A service whose CPU usage and CPI are anti-correlated by design.
///
/// In the active phase it serves traffic at moderate CPI; in the idle
/// phase a housekeeping thread trickles along at terrible CPI (cold
/// caches, pointer chasing) while overall usage is far below the 0.25
/// CPU-sec/sec detection floor.
#[derive(Debug)]
pub struct BimodalService {
    /// Active-phase CPU, cores.
    pub active_cpu: f64,
    /// Idle-phase CPU, cores (below the detection floor).
    pub idle_cpu: f64,
    /// Active-phase length, ticks (most of the time).
    pub active_ticks: u32,
    /// Idle-phase length, ticks.
    pub idle_ticks: u32,
    tick: u32,
    rng: SimRng,
}

impl BimodalService {
    /// Creates the Case-3 service shape: mostly active at ~3 CPI and 0.35
    /// cores, with ~4-minute housekeeping lulls at dreadful CPI and usage
    /// below the detection floor.
    pub fn new(seed: u64) -> Self {
        BimodalService {
            active_cpu: 0.35,
            idle_cpu: 0.05,
            active_ticks: 1260,
            idle_ticks: 240,
            tick: 0,
            rng: SimRng::derive(seed, 0xB1D0),
        }
    }

    fn active(&self) -> bool {
        self.tick % (self.active_ticks + self.idle_ticks) < self.active_ticks
    }
}

impl TaskModel for BimodalService {
    fn profile(&self) -> ResourceProfile {
        if self.active() {
            ResourceProfile {
                base_cpi: 3.0,
                cache_mb: 3.0,
                mpki_solo: 2.0,
                cache_sensitivity: 1.0,
                cpi_noise: 0.05,
            }
        } else {
            // Housekeeping: dreadful CPI, negligible usage.
            ResourceProfile {
                base_cpi: 14.0,
                cache_mb: 0.5,
                mpki_solo: 15.0,
                cache_sensitivity: 0.5,
                cpi_noise: 0.08,
            }
        }
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        let want = if self.active() {
            self.active_cpu * (1.0 + 0.1 * self.rng.normal())
        } else {
            self.idle_cpu * (1.0 + 0.1 * self.rng.normal())
        };
        self.tick += 1;
        TaskDemand {
            cpu_want: want.max(0.01),
            threads: 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_and_cpi_anticorrelated() {
        let mut s = BimodalService::new(1);
        let mut rng = SimRng::new(0);
        let mut pairs = Vec::new();
        for i in 0..2400 {
            let p = s.profile();
            let d = s.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            pairs.push((d.cpu_want, p.base_cpi));
        }
        let usage: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let cpi: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = cpi2_stats::correlation::pearson(&usage, &cpi).unwrap();
        assert!(r < -0.8, "r={r}");
    }

    #[test]
    fn idle_phase_below_detection_floor() {
        let mut s = BimodalService::new(2);
        s.tick = s.active_ticks; // Jump to the idle phase.
        let mut rng = SimRng::new(0);
        let d = s.demand(SimTime::ZERO, SimDuration::from_secs(1), &mut rng);
        assert!(
            d.cpu_want < 0.25,
            "usage {} must be under the floor",
            d.cpu_want
        );
        assert!(s.profile().base_cpi > 10.0);
    }

    #[test]
    fn phases_alternate_on_schedule() {
        let mut s = BimodalService::new(3);
        s.active_ticks = 30;
        s.idle_ticks = 10;
        let mut rng = SimRng::new(0);
        let mut highs = 0;
        let mut lows = 0;
        for i in 0..80 {
            let d = s.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            if d.cpu_want > 0.2 {
                highs += 1;
            } else {
                lows += 1;
            }
        }
        assert_eq!(highs, 60);
        assert_eq!(lows, 20);
    }
}
