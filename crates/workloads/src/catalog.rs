//! A catalog of named jobs matching the paper's case studies, plus
//! cluster-population helpers.
//!
//! The Case-1 machine had 57 tenants including a video-processing batch
//! job, content digitizing, an image front-end, a BigTable tablet and a
//! storage server; Case 4's machine ran compilation, a security service,
//! statistics, data query/analysis, a maps service, image render, ads
//! serving and a scientific simulation. This module provides factories for
//! all of them so experiments can reconstruct those tenancies.

use crate::antagonists::LameDuckReplayer;
use crate::batch::BatchTask;
use crate::bimodal::BimodalService;
use crate::diurnal::DiurnalPattern;
use crate::mapreduce::MapReduceWorker;
use crate::websearch::{Tier, WebSearchTask};
use cpi2_sim::{
    Cluster, JobId, JobSpec, ModelFactory, ResourceProfile, SimDuration, SimTime, TaskDemand,
    TaskModel,
};
use cpi2_stats::rng::SimRng;

/// A generic latency-sensitive serving task: diurnal demand over a fixed
/// microarchitectural profile (BigTable tablets, storage servers, ads
/// serving, ... — everything that is "serving" but not web search).
#[derive(Debug)]
pub struct LsService {
    profile: ResourceProfile,
    cpu_scale: f64,
    pattern: DiurnalPattern,
    threads: u32,
    rng: SimRng,
}

impl LsService {
    /// Creates a serving task with the given shape.
    ///
    /// Tasks of one job are similar but not identical — different data
    /// shards and request mixes give a per-task CPI spread of a few
    /// percent, which is where the paper's spec σ (e.g. 1.8 ± 0.16)
    /// comes from. A static ±6 % jitter on the base CPI models that.
    pub fn new(mut profile: ResourceProfile, cpu_scale: f64, threads: u32, seed: u64) -> Self {
        profile.validate().expect("valid profile");
        let mut rng = SimRng::derive(seed, 0x15e4);
        profile.base_cpi *= (1.0 + 0.06 * rng.normal()).clamp(0.75, 1.3);
        LsService {
            profile,
            cpu_scale,
            pattern: DiurnalPattern::serving(),
            threads,
            rng,
        }
    }
}

impl TaskModel for LsService {
    fn profile(&self) -> ResourceProfile {
        self.profile
    }

    fn demand(&mut self, now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        let level = self.pattern.level(now) * (1.0 + 0.08 * self.rng.normal());
        TaskDemand {
            cpu_want: (self.cpu_scale * level).max(0.05),
            threads: self.threads,
        }
    }
}

/// Builds a model factory for a named job template.
///
/// `seed` is mixed with the task index so every task gets an independent
/// stream. Unknown names fall back to a generic LS service.
pub fn factory(name: &str, seed: u64) -> ModelFactory {
    let name = name.to_string();
    Box::new(move |index| {
        let s = seed ^ (index as u64).wrapping_mul(0x9E37_79B9);
        make_model(&name, s)
    })
}

fn make_model(name: &str, seed: u64) -> Box<dyn TaskModel> {
    match name {
        "websearch-leaf" => Box::new(WebSearchTask::new(Tier::Leaf, seed)),
        "websearch-intermediate" => Box::new(WebSearchTask::new(Tier::Intermediate, seed)),
        "websearch-root" => Box::new(WebSearchTask::new(Tier::Root, seed)),
        "video-processing" => Box::new(BatchTask::video_processing(seed)),
        "scientific-simulation" => Box::new(BatchTask::scientific_simulation(seed)),
        "compilation" => Box::new(BatchTask::compilation(seed)),
        "mapreduce" => Box::new(MapReduceWorker::new(seed)),
        "replayer" => Box::new(LameDuckReplayer::new(3.0, seed)),
        "cache-thrasher" => Box::new(crate::antagonists::CacheThrasher::new(8.0, 300, 300, seed)),
        "membw-hog" => Box::new(crate::antagonists::MemoryBandwidthHog::new(6.0, seed)),
        "bimodal-frontend" => Box::new(BimodalService::new(seed)),
        "content-digitizing" => Box::new(LsService::new(
            ResourceProfile {
                base_cpi: 1.6,
                cache_mb: 5.0,
                mpki_solo: 2.5,
                cache_sensitivity: 1.1,
                cpi_noise: 0.03,
            },
            1.5,
            12,
            seed,
        )),
        "image-frontend" => Box::new(LsService::new(
            ResourceProfile {
                base_cpi: 1.3,
                cache_mb: 4.0,
                mpki_solo: 1.8,
                cache_sensitivity: 1.0,
                cpi_noise: 0.03,
            },
            1.0,
            16,
            seed,
        )),
        "bigtable-tablet" => Box::new(LsService::new(
            ResourceProfile {
                base_cpi: 1.5,
                cache_mb: 7.0,
                mpki_solo: 2.8,
                cache_sensitivity: 1.3,
                cpi_noise: 0.03,
            },
            1.2,
            20,
            seed,
        )),
        "storage-server" => Box::new(LsService::new(
            ResourceProfile {
                base_cpi: 1.7,
                cache_mb: 6.0,
                mpki_solo: 3.5,
                cache_sensitivity: 0.9,
                cpi_noise: 0.04,
            },
            1.0,
            24,
            seed,
        )),
        "security-service" | "statistics" | "data-query" | "maps-service" | "image-render"
        | "ads-serving" => Box::new(LsService::new(
            ResourceProfile {
                base_cpi: 1.2,
                cache_mb: 3.0,
                mpki_solo: 1.2,
                cache_sensitivity: 0.9,
                cpi_noise: 0.03,
            },
            0.8,
            10,
            seed,
        )),
        _ => Box::new(LsService::new(ResourceProfile::cache_heavy(), 1.0, 8, seed)),
    }
}

/// Whether a catalog job name denotes a latency-sensitive job.
pub fn is_latency_sensitive(name: &str) -> bool {
    !matches!(
        name,
        "video-processing"
            | "scientific-simulation"
            | "compilation"
            | "mapreduce"
            | "replayer"
            | "cache-thrasher"
            | "membw-hog"
    )
}

/// Submits a representative production mix to a cluster: a few large
/// latency-sensitive serving jobs plus batch jobs of every stripe.
/// Returns `(job_id, name)` pairs.
///
/// `scale` multiplies task counts (1 = a mix sized for ~20 machines).
pub fn submit_typical_mix(cluster: &mut Cluster, scale: u32, seed: u64) -> Vec<(JobId, String)> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    let jobs: Vec<(&str, JobSpec)> = vec![
        (
            "websearch-leaf",
            JobSpec::latency_sensitive("websearch-leaf", 12 * scale, 2.0),
        ),
        (
            "bigtable-tablet",
            JobSpec::latency_sensitive("bigtable-tablet", 8 * scale, 1.2),
        ),
        (
            "storage-server",
            JobSpec::latency_sensitive("storage-server", 8 * scale, 1.0),
        ),
        (
            "image-frontend",
            JobSpec::latency_sensitive("image-frontend", 6 * scale, 1.0),
        ),
        (
            "content-digitizing",
            JobSpec::latency_sensitive("content-digitizing", 6 * scale, 1.5),
        ),
        (
            "video-processing",
            JobSpec::best_effort("video-processing", 6 * scale, 1.0),
        ),
        (
            "scientific-simulation",
            JobSpec::batch("scientific-simulation", 5 * scale, 1.0),
        ),
        ("compilation", JobSpec::batch("compilation", 5 * scale, 0.8)),
        ("mapreduce", JobSpec::batch("mapreduce", 8 * scale, 1.0)),
    ];
    for (name, spec) in jobs {
        let f = factory(name, seed ^ hash_name(name));
        // MapReduce manages its own workers; everything else restarts.
        let restart = name != "mapreduce";
        if let Ok(id) = cluster.submit_job(spec, restart, f) {
            out.push((id, name.to_string()));
        }
    }
    out
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_sim::{ClusterConfig, Platform};

    #[test]
    fn factory_produces_models_for_all_names() {
        let names = [
            "websearch-leaf",
            "websearch-intermediate",
            "websearch-root",
            "video-processing",
            "scientific-simulation",
            "compilation",
            "mapreduce",
            "replayer",
            "bimodal-frontend",
            "content-digitizing",
            "image-frontend",
            "bigtable-tablet",
            "storage-server",
            "security-service",
            "cache-thrasher",
            "membw-hog",
            "unknown-job",
        ];
        for n in names {
            let mut f = factory(n, 1);
            let m = f(0);
            m.profile().validate().unwrap();
        }
    }

    #[test]
    fn distinct_task_indices_get_distinct_streams() {
        let mut f = factory("websearch-leaf", 1);
        let mut a = f(0);
        let mut b = f(1);
        let mut rng = SimRng::new(0);
        let da = a.demand(SimTime::from_hours(12), SimDuration::from_secs(1), &mut rng);
        let db = b.demand(SimTime::from_hours(12), SimDuration::from_secs(1), &mut rng);
        assert_ne!(da.cpu_want, db.cpu_want);
    }

    #[test]
    fn latency_sensitivity_classification() {
        assert!(is_latency_sensitive("websearch-leaf"));
        assert!(is_latency_sensitive("bigtable-tablet"));
        assert!(!is_latency_sensitive("video-processing"));
        assert!(!is_latency_sensitive("mapreduce"));
    }

    #[test]
    fn typical_mix_populates_cluster() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.add_machines(&Platform::westmere(), 30);
        let jobs = submit_typical_mix(&mut c, 1, 42);
        assert!(jobs.len() >= 8, "placed {} jobs", jobs.len());
        let tasks: usize = c.machines().iter().map(|m| m.task_count()).sum();
        assert!(tasks > 50, "placed {tasks} tasks");
        // Multi-tenancy: most machines host several tasks (Fig. 1a).
        let multi = c.machines().iter().filter(|m| m.task_count() >= 2).count();
        assert!(multi > 20, "only {multi} machines multi-tenant");
        // And the mix runs.
        c.run_for(SimDuration::from_secs(5));
    }
}
