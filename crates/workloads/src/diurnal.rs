//! Diurnal load patterns.
//!
//! User-facing traffic follows a daily cycle; Fig. 5 shows web-search CPI
//! tracking it with a ~4 % coefficient of variation. [`DiurnalPattern`]
//! produces the load multiplier that drives per-task CPU demand.

use cpi2_sim::SimTime;

/// A sinusoidal daily load curve with optional weekday modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalPattern {
    /// Mean load level (e.g. cores, or a 0–1 utilization factor).
    pub base: f64,
    /// Peak-to-mean amplitude as a fraction of `base` (0.3 = ±30 %).
    pub amplitude: f64,
    /// Hour of day (0–24) at which load peaks.
    pub peak_hour: f64,
}

impl DiurnalPattern {
    /// A typical serving-load shape: peak at 18:00, ±30 %.
    pub fn serving() -> Self {
        DiurnalPattern {
            base: 1.0,
            amplitude: 0.3,
            peak_hour: 18.0,
        }
    }

    /// A flat pattern (no diurnal variation).
    pub fn flat(base: f64) -> Self {
        DiurnalPattern {
            base,
            amplitude: 0.0,
            peak_hour: 0.0,
        }
    }

    /// The load multiplier at simulated time `t`.
    pub fn level(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        let phase = 2.0 * std::f64::consts::PI * (h - self.peak_hour) / 24.0;
        (self.base * (1.0 + self.amplitude * phase.cos())).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_sim::SimDuration;

    #[test]
    fn peaks_at_peak_hour() {
        let p = DiurnalPattern::serving();
        let peak = p.level(SimTime::from_hours(18));
        let trough = p.level(SimTime::from_hours(6));
        assert!((peak - 1.3).abs() < 1e-9);
        assert!((trough - 0.7).abs() < 1e-9);
    }

    #[test]
    fn flat_is_constant() {
        let p = DiurnalPattern::flat(2.0);
        for h in 0..24 {
            assert_eq!(p.level(SimTime::from_hours(h)), 2.0);
        }
    }

    #[test]
    fn period_is_one_day() {
        let p = DiurnalPattern::serving();
        let t = SimTime::from_hours(7);
        let t_next = t + SimDuration::from_hours(24);
        assert!((p.level(t) - p.level(t_next)).abs() < 1e-12);
    }

    #[test]
    fn never_negative() {
        let p = DiurnalPattern {
            base: 1.0,
            amplitude: 2.0, // Over-amplified on purpose.
            peak_hour: 12.0,
        };
        for h in 0..24 {
            assert!(p.level(SimTime::from_hours(h)) >= 0.0);
        }
    }
}
