//! Workload generators for the CPI² reproduction.
//!
//! Task behaviour models for every workload the paper's evaluation
//! mentions:
//!
//! * [`websearch`] — the three-tier search serving stack of Figs. 3–4
//!   (leaf / intermediate / root, with the root's latency decoupled from
//!   its own CPI).
//! * [`batch`] — transaction-counting batch jobs (Fig. 2) and the case
//!   studies' video processing, scientific simulation and compilation.
//! * [`mapreduce`] — workers that survive capping while idle but give up
//!   under prolonged starvation (Case 6).
//! * [`antagonists`] — cache thrashers, the Case-5 lame-duck replayer
//!   (8 → 80 → 2 threads), and the turn-taking group antagonist §4.2
//!   admits is hard for per-task correlation.
//! * [`bimodal`] — the Case-3 self-inflicted CPI/usage anticorrelation
//!   that motivated the minimum-usage filter.
//! * [`diurnal`] — daily load curves (Fig. 5).
//! * [`catalog`] — named job templates and cluster-population helpers.

#![warn(missing_docs)]

pub mod antagonists;
pub mod batch;
pub mod bimodal;
pub mod catalog;
pub mod diurnal;
pub mod mapreduce;
pub mod replay;
pub mod websearch;

pub use antagonists::{CacheThrasher, LameDuckReplayer, MemoryBandwidthHog, TurnTakingMember};
pub use batch::BatchTask;
pub use bimodal::BimodalService;
pub use catalog::{factory, is_latency_sensitive, submit_typical_mix, LsService};
pub use diurnal::DiurnalPattern;
pub use mapreduce::MapReduceWorker;
pub use replay::{parse_trace, schedule_trace, TraceError, TraceJob};
pub use websearch::{Tier, WebSearchTask};
