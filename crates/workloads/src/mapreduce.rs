//! MapReduce workers: stragglers, shard processing, and capping reactions.
//!
//! §2 notes MapReduce frameworks already handle stragglers by replacement;
//! §6.2 (Case 6) shows a MapReduce worker that "survived the first
//! hard-capping (perhaps because it was inactive at the time) but during
//! the second one it either quit or was terminated by the MapReduce
//! master". [`MapReduceWorker`] reproduces that behaviour: prolonged
//! starvation while *actively trying to work* makes it exit.

use cpi2_sim::{
    ResourceProfile, SimDuration, SimTime, TaskAction, TaskDemand, TaskModel, TickOutcome,
};
use cpi2_stats::rng::SimRng;

/// A MapReduce worker task processing a queue of shards.
#[derive(Debug)]
pub struct MapReduceWorker {
    profile: ResourceProfile,
    /// CPU demand while processing a shard, cores.
    active_cpu: f64,
    /// Work per shard in CPU-seconds.
    shard_cpu_secs: f64,
    /// Remaining CPU-seconds in the current shard; `None` while idle
    /// between shards.
    current_shard: Option<f64>,
    /// Ticks of idleness between shards (fetching input, waiting for the
    /// master).
    idle_gap: u32,
    idle_left: u32,
    /// Consecutive ticks the worker wanted CPU but was capped hard.
    starved_ticks: u32,
    /// Starvation tolerance before giving up (ticks).
    starvation_limit: u32,
    rng: SimRng,
    shards_done: u64,
}

impl MapReduceWorker {
    /// Creates a worker with paper-plausible defaults: 5-core bursts,
    /// ~2-minute shards, and a 3-minute starvation tolerance.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::derive(seed, 0x3A9);
        let idle = rng.range_u64(3, 10) as u32;
        Self::with_rng(rng, idle)
    }

    fn with_rng(rng: SimRng, idle: u32) -> Self {
        MapReduceWorker {
            profile: ResourceProfile {
                base_cpi: 1.6,
                cache_mb: 12.0,
                mpki_solo: 5.0,
                cache_sensitivity: 0.4,
                cpi_noise: 0.04,
            },
            active_cpu: 5.0,
            shard_cpu_secs: 600.0,
            current_shard: None,
            idle_gap: idle,
            idle_left: 0,
            starved_ticks: 0,
            starvation_limit: 180,
            rng,
            shards_done: 0,
        }
    }

    /// Sets the starvation tolerance in ticks (seconds at the default tick).
    pub fn with_starvation_limit(mut self, ticks: u32) -> Self {
        self.starvation_limit = ticks;
        self
    }

    /// Sets the idle gap between shards, in ticks. Long gaps model workers
    /// that spend minutes waiting on the master or fetching input — the
    /// kind that survive a cap "because it was inactive at the time"
    /// (Case 6).
    pub fn with_idle_gap(mut self, ticks: u32) -> Self {
        self.idle_gap = ticks;
        self.idle_left = ticks;
        self
    }

    /// Shards completed so far.
    pub fn shards_done(&self) -> u64 {
        self.shards_done
    }
}

impl TaskModel for MapReduceWorker {
    fn profile(&self) -> ResourceProfile {
        self.profile
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        if self.current_shard.is_none() {
            if self.idle_left > 0 {
                self.idle_left -= 1;
                return TaskDemand {
                    cpu_want: 0.05,
                    threads: 4,
                };
            }
            // Fetch the next shard (slightly variable size).
            let size = self.shard_cpu_secs * (0.8 + 0.4 * self.rng.f64());
            self.current_shard = Some(size);
        }
        TaskDemand {
            cpu_want: self.active_cpu,
            threads: 16,
        }
    }

    fn observe(&mut self, _now: SimTime, outcome: &TickOutcome) -> TaskAction {
        if let Some(left) = self.current_shard.as_mut() {
            *left -= outcome.cpu_granted;
            if *left <= 0.0 {
                self.current_shard = None;
                self.idle_left = self.idle_gap;
                self.shards_done += 1;
            }
            // Starvation accounting: wanted active CPU, got a trickle.
            if outcome.capped && outcome.cpu_granted < 0.2 {
                self.starved_ticks += 1;
                if self.starved_ticks >= self.starvation_limit {
                    return TaskAction::Exit; // Case 6: give up, let the
                                             // master reschedule us.
                }
            } else {
                self.starved_ticks = 0;
            }
        }
        TaskAction::Continue
    }

    fn transactions(&self, outcome: &TickOutcome, _dt: SimDuration) -> Option<f64> {
        // One "transaction" per shard-CPU-second of progress.
        Some(outcome.cpu_granted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(granted: f64, capped: bool) -> TickOutcome {
        TickOutcome {
            cpu_granted: granted,
            capped,
            cpi: 1.6,
            instructions: granted * 1e9,
            l3_misses: 1e5,
        }
    }

    #[test]
    fn processes_shards_with_idle_gaps() {
        let mut w = MapReduceWorker::new(1);
        let mut rng = SimRng::new(0);
        let mut idles = 0;
        for i in 0..1_000 {
            let d = w.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            if d.cpu_want < 0.1 {
                idles += 1;
                w.observe(SimTime::from_secs(i), &outcome(d.cpu_want, false));
            } else {
                w.observe(SimTime::from_secs(i), &outcome(5.0, false));
            }
        }
        assert!(w.shards_done() >= 3, "done={}", w.shards_done());
        assert!(idles > 0, "never idled");
    }

    #[test]
    fn survives_capping_while_idle() {
        // Case 6's first capping: worker inactive (between shards) so the
        // cap doesn't starve it.
        let mut w = MapReduceWorker::new(2).with_starvation_limit(10);
        let mut rng = SimRng::new(0);
        // Force idle state.
        w.current_shard = None;
        w.idle_left = 30;
        for i in 0..20 {
            let d = w.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            let act = w.observe(SimTime::from_secs(i), &outcome(d.cpu_want.min(0.01), true));
            assert_eq!(act, TaskAction::Continue, "tick {i}");
        }
    }

    #[test]
    fn exits_under_prolonged_active_starvation() {
        // Case 6's second capping: worker mid-shard, capped to ~nothing.
        let mut w = MapReduceWorker::new(3).with_starvation_limit(10);
        let mut rng = SimRng::new(0);
        let mut exited = false;
        for i in 0..50 {
            w.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            if w.observe(SimTime::from_secs(i), &outcome(0.01, true)) == TaskAction::Exit {
                exited = true;
                break;
            }
        }
        assert!(exited, "worker should have given up");
    }

    #[test]
    fn starvation_counter_resets_on_relief() {
        let mut w = MapReduceWorker::new(4).with_starvation_limit(10);
        let mut rng = SimRng::new(0);
        for i in 0..100 {
            w.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            // Alternate starvation and relief: never 10 consecutive.
            let o = if i % 5 == 4 {
                outcome(5.0, false)
            } else {
                outcome(0.01, true)
            };
            assert_eq!(w.observe(SimTime::from_secs(i), &o), TaskAction::Continue);
        }
    }
}
