//! Trace-driven cluster replay.
//!
//! A downstream user's first question is "what does CPI² do on *my*
//! workload?" — this module answers it: describe job arrivals in a small
//! JSONL trace (one [`TraceJob`] per line) and replay them onto a
//! simulated cluster through its event queue. Task behaviour comes from
//! the [`crate::catalog`] templates by name.
//!
//! ```text
//! {"at_s":0,   "name":"websearch-leaf", "class":"latency-sensitive", "tasks":12, "cpu":2.0, "seed":1}
//! {"at_s":1800,"name":"video-processing","class":"best-effort","tasks":3,"cpu":1.0,"seed":2,"duration_s":3600}
//! ```

use crate::catalog;
use cpi2_sim::{
    Cluster, ClusterEvent, JobSpec, ResourceProfile, SimDuration, SimTime, TaskAction, TaskDemand,
    TaskModel, TickOutcome,
};
use cpi2_stats::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One job arrival in a replayable trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Arrival time, seconds since the trace epoch.
    pub at_s: i64,
    /// Catalog template name (see [`crate::catalog::factory`]).
    pub name: String,
    /// `"latency-sensitive"`, `"batch"` or `"best-effort"`.
    pub class: String,
    /// Task count.
    pub tasks: u32,
    /// Per-task CPU reservation, cores.
    pub cpu: f64,
    /// Seed for the job's task models.
    #[serde(default)]
    pub seed: u64,
    /// Optional lifetime; tasks exit on their own after this long.
    #[serde(default)]
    pub duration_s: Option<i64>,
}

/// Errors loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// A line failed to parse (line number, error).
    Parse(usize, serde_json::Error),
    /// An unknown scheduling class string.
    BadClass(usize, String),
    /// Invalid numeric fields.
    BadJob(usize, String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse(line, e) => write!(f, "trace line {line}: {e}"),
            TraceError::BadClass(line, c) => {
                write!(f, "trace line {line}: unknown class '{c}'")
            }
            TraceError::BadJob(line, why) => write!(f, "trace line {line}: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace (empty lines and `#` comments allowed).
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceJob>, TraceError> {
    let mut jobs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let job: TraceJob = serde_json::from_str(line).map_err(|e| TraceError::Parse(i + 1, e))?;
        validate(&job, i + 1)?;
        jobs.push(job);
    }
    Ok(jobs)
}

fn validate(job: &TraceJob, line: usize) -> Result<(), TraceError> {
    if !matches!(
        job.class.as_str(),
        "latency-sensitive" | "batch" | "best-effort"
    ) {
        return Err(TraceError::BadClass(line, job.class.clone()));
    }
    if job.tasks == 0 {
        return Err(TraceError::BadJob(line, "tasks must be ≥ 1".into()));
    }
    if !(job.cpu.is_finite() && job.cpu > 0.0) {
        return Err(TraceError::BadJob(line, format!("bad cpu {}", job.cpu)));
    }
    if job.at_s < 0 {
        return Err(TraceError::BadJob(line, "at_s must be ≥ 0".into()));
    }
    if let Some(d) = job.duration_s {
        if d <= 0 {
            return Err(TraceError::BadJob(
                line,
                "duration_s must be positive".into(),
            ));
        }
    }
    Ok(())
}

/// Wraps a task model with a finite lifetime: the task exits on its own
/// once `ends_at` passes (trace departures).
struct FiniteModel {
    inner: Box<dyn TaskModel>,
    ends_at: SimTime,
    now: SimTime,
}

impl TaskModel for FiniteModel {
    fn profile(&self) -> ResourceProfile {
        self.inner.profile()
    }

    fn demand(&mut self, now: SimTime, dt: SimDuration, rng: &mut SimRng) -> TaskDemand {
        self.now = now;
        self.inner.demand(now, dt, rng)
    }

    fn observe(&mut self, now: SimTime, outcome: &TickOutcome) -> TaskAction {
        if now >= self.ends_at {
            return TaskAction::Exit;
        }
        self.inner.observe(now, outcome)
    }

    fn transactions(&self, outcome: &TickOutcome, dt: SimDuration) -> Option<f64> {
        self.inner.transactions(outcome, dt)
    }

    fn request_latency_ms(&self, outcome: &TickOutcome) -> Option<f64> {
        self.inner.request_latency_ms(outcome)
    }
}

/// Schedules every trace job onto the cluster's event queue (arrival times
/// are relative to the cluster's current time). Returns the number of jobs
/// scheduled.
pub fn schedule_trace(cluster: &mut Cluster, jobs: &[TraceJob]) -> usize {
    let base = cluster.now();
    for job in jobs {
        let spec = match job.class.as_str() {
            "latency-sensitive" => JobSpec::latency_sensitive(&job.name, job.tasks, job.cpu),
            "best-effort" => JobSpec::best_effort(&job.name, job.tasks, job.cpu),
            _ => JobSpec::batch(&job.name, job.tasks, job.cpu),
        };
        let at = base + SimDuration::from_secs(job.at_s);
        let name = job.name.clone();
        let seed = job.seed;
        let ends_at = job.duration_s.map(|d| at + SimDuration::from_secs(d));
        let factory: cpi2_sim::ModelFactory = Box::new(move |index| {
            let mut inner_factory = catalog::factory(&name, seed);
            let inner = inner_factory(index);
            match ends_at {
                Some(ends_at) => Box::new(FiniteModel {
                    inner,
                    ends_at,
                    now: SimTime::ZERO,
                }),
                None => inner,
            }
        });
        cluster.schedule_event(
            at,
            ClusterEvent::SubmitJob {
                spec,
                // Finite jobs must not be respawned when they expire.
                restart_on_exit: job.duration_s.is_none() && job.name != "mapreduce",
                factory,
            },
        );
    }
    jobs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_sim::{ClusterConfig, Platform};

    const SAMPLE: &str = r#"
# serving arrives immediately, batch 10 minutes in, for one hour
{"at_s":0,   "name":"websearch-leaf",   "class":"latency-sensitive", "tasks":6, "cpu":2.0, "seed":1}
{"at_s":600, "name":"video-processing", "class":"best-effort", "tasks":2, "cpu":1.0, "seed":2, "duration_s":3600}
"#;

    #[test]
    fn parses_sample_trace() {
        let jobs = parse_trace(SAMPLE).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "websearch-leaf");
        assert_eq!(jobs[1].duration_s, Some(3600));
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            parse_trace("{\"at_s\":0"),
            Err(TraceError::Parse(1, _))
        ));
        let bad_class = r#"{"at_s":0,"name":"x","class":"weird","tasks":1,"cpu":1.0}"#;
        assert!(matches!(
            parse_trace(bad_class),
            Err(TraceError::BadClass(1, _))
        ));
        let bad_tasks = r#"{"at_s":0,"name":"x","class":"batch","tasks":0,"cpu":1.0}"#;
        assert!(matches!(
            parse_trace(bad_tasks),
            Err(TraceError::BadJob(1, _))
        ));
    }

    #[test]
    fn replay_arrives_and_departs() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.add_machines(&Platform::westmere(), 4);
        let jobs = parse_trace(SAMPLE).unwrap();
        assert_eq!(schedule_trace(&mut cluster, &jobs), 2);

        // Before t=0 fires nothing has arrived; after one step the LS job
        // is placed.
        cluster.run_for(SimDuration::from_secs(5));
        let count = |c: &Cluster, name: &str| {
            c.machines()
                .iter()
                .flat_map(|m| m.tasks())
                .filter(|t| t.job_name == name)
                .count()
        };
        assert_eq!(count(&cluster, "websearch-leaf"), 6);
        assert_eq!(count(&cluster, "video-processing"), 0);

        // After 10 minutes the batch job arrives...
        cluster.run_for(SimDuration::from_mins(11));
        assert_eq!(count(&cluster, "video-processing"), 2);

        // ...and it departs on schedule (600 s arrival + 3600 s lifetime).
        cluster.run_for(SimDuration::from_mins(61));
        assert_eq!(count(&cluster, "video-processing"), 0);
        assert_eq!(count(&cluster, "websearch-leaf"), 6, "LS job stays");
    }
}
