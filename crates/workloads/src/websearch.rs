//! Web-search serving tiers: leaf, intermediate and root nodes.
//!
//! "A typical web-search query involves thousands of machines working in
//! parallel" (§2). The paper's Figs. 3–4 use this workload: request
//! latency of leaf and intermediate nodes correlates strongly with CPI,
//! while a *root* node's latency is "largely determined by the response
//! time of other nodes, not the root node itself" — so its latency/CPI
//! correlation is poor. These models reproduce exactly that structure.

use crate::diurnal::DiurnalPattern;
use cpi2_sim::{
    ResourceProfile, SimDuration, SimTime, TaskAction, TaskDemand, TaskModel, TickOutcome,
};
use cpi2_stats::rng::SimRng;

/// Which tier of the search tree a task serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Leaf node: scans its index shard (compute- and cache-intensive).
    Leaf,
    /// Intermediate mixer node.
    Intermediate,
    /// Root node: fans out and merges; latency dominated by children.
    Root,
}

/// A web-search serving task.
#[derive(Debug)]
pub struct WebSearchTask {
    tier: Tier,
    pattern: DiurnalPattern,
    /// Per-task CPU scale (cores at load level 1.0).
    cpu_scale: f64,
    profile: ResourceProfile,
    /// CPI at which the latency model is calibrated.
    nominal_cpi: f64,
    /// Service time at nominal CPI, in ms.
    base_service_ms: f64,
    /// Instructions per query (for QPS accounting).
    instr_per_query: f64,
    /// Log-normal sigma of per-tick latency noise (per-task variation the
    /// Fig. 4 scatter shows).
    latency_noise: f64,
    rng: SimRng,
    last_latency_ms: f64,
    /// Slowly wandering service-time multiplier (query-mix drift): keeps
    /// per-task 5-minute samples scattered, as in the paper's Fig. 4.
    service_bias: f64,
}

impl WebSearchTask {
    /// Creates a task of the given tier, seeded deterministically.
    pub fn new(tier: Tier, seed: u64) -> Self {
        let mut rng = SimRng::derive(seed, 0x5EA2C4);
        // Small static per-task spread, as real shards differ slightly.
        let jitter = 1.0 + 0.05 * rng.normal();
        let (cpu_scale, profile, base_service_ms, latency_noise) = match tier {
            Tier::Leaf => (
                2.0 * jitter,
                ResourceProfile {
                    base_cpi: 1.8,
                    cache_mb: 8.0,
                    mpki_solo: 3.0,
                    cache_sensitivity: 1.2,
                    cpi_noise: 0.03,
                },
                30.0,
                0.10,
            ),
            Tier::Intermediate => (
                1.0 * jitter,
                ResourceProfile {
                    base_cpi: 1.4,
                    cache_mb: 4.0,
                    mpki_solo: 1.5,
                    cache_sensitivity: 1.0,
                    cpi_noise: 0.03,
                },
                15.0,
                0.12,
            ),
            Tier::Root => (
                0.8 * jitter,
                ResourceProfile {
                    base_cpi: 1.1,
                    cache_mb: 2.0,
                    mpki_solo: 0.8,
                    cache_sensitivity: 0.8,
                    cpi_noise: 0.03,
                },
                5.0,
                0.08,
            ),
        };
        // Static per-task service-time and CPI spread (shard differences).
        let service_jitter = (1.0 + 0.12 * rng.normal()).clamp(0.7, 1.3);
        let mut profile = profile;
        profile.base_cpi *= (1.0 + 0.06 * rng.normal()).clamp(0.75, 1.3);
        WebSearchTask {
            tier,
            pattern: DiurnalPattern::serving(),
            cpu_scale: cpu_scale.max(0.1),
            profile,
            nominal_cpi: profile.base_cpi,
            base_service_ms: base_service_ms * service_jitter,
            instr_per_query: 50e6,
            latency_noise,
            rng,
            last_latency_ms: 0.0,
            service_bias: 1.0,
        }
    }

    /// Overrides the diurnal pattern (tests and experiments).
    pub fn with_pattern(mut self, pattern: DiurnalPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// The tier this task serves.
    pub fn tier(&self) -> Tier {
        self.tier
    }
}

impl TaskModel for WebSearchTask {
    fn profile(&self) -> ResourceProfile {
        self.profile
    }

    fn demand(&mut self, now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        let level = self.pattern.level(now);
        // Query arrival noise on top of the diurnal curve.
        let noisy = level * (1.0 + 0.05 * self.rng.normal());
        TaskDemand {
            cpu_want: (self.cpu_scale * noisy).max(0.05),
            threads: 24,
        }
    }

    fn observe(&mut self, now: SimTime, outcome: &TickOutcome) -> TaskAction {
        // Query-mix drift: a mean-reverting random walk so even 5-minute
        // latency means keep task-level scatter (Fig. 4).
        let step = 0.02 * self.rng.normal() - 0.01 * (self.service_bias - 1.0);
        self.service_bias = (self.service_bias + step).clamp(0.75, 1.35);
        // Latency model. Leaf/intermediate: service time scales with CPI
        // (each query executes a fixed instruction budget, so wall time per
        // query ∝ CPI), plus noise from query mix.
        let own =
            self.base_service_ms * self.service_bias * (outcome.cpi / self.nominal_cpi).max(0.1);
        let noise = self.rng.lognormal(0.0, self.latency_noise);
        self.last_latency_ms = match self.tier {
            Tier::Leaf | Tier::Intermediate => own * noise,
            Tier::Root => {
                // Children dominate: a load-dependent fan-out tail that has
                // nothing to do with this task's own CPI.
                let load = self.pattern.level(now);
                let children = 40.0 * (1.0 + 0.5 * load) * self.rng.lognormal(0.0, 0.25);
                children + 0.1 * own * noise
            }
        };
        TaskAction::Continue
    }

    fn transactions(&self, outcome: &TickOutcome, _dt: SimDuration) -> Option<f64> {
        Some(outcome.instructions / self.instr_per_query)
    }

    fn request_latency_ms(&self, _outcome: &TickOutcome) -> Option<f64> {
        Some(self.last_latency_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_stats::correlation::pearson;

    fn outcome(cpi: f64) -> TickOutcome {
        TickOutcome {
            cpu_granted: 2.0,
            capped: false,
            cpi,
            instructions: 2.0 * 2.6e9 / cpi,
            l3_misses: 1e6,
        }
    }

    /// Drives one task through a CPI trajectory and collects
    /// (cpi, latency) pairs.
    fn trajectory(tier: Tier, seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut t = WebSearchTask::new(tier, seed);
        let mut cpis = Vec::new();
        let mut lats = Vec::new();
        let mut rng = SimRng::new(seed);
        for i in 0..n {
            // CPI wanders between 1× and 2× nominal.
            let cpi = t.nominal_cpi
                * (1.0 + 0.5 * (1.0 + ((i as f64) * 0.1).sin()) / 2.0 + 0.05 * rng.normal().abs());
            let o = outcome(cpi);
            t.observe(SimTime::from_secs(i as i64 * 300), &o);
            cpis.push(cpi);
            lats.push(t.request_latency_ms(&o).unwrap());
        }
        (cpis, lats)
    }

    #[test]
    fn leaf_latency_tracks_cpi() {
        let (cpis, lats) = trajectory(Tier::Leaf, 1, 500);
        let r = pearson(&cpis, &lats).unwrap();
        assert!(r > 0.5, "leaf r={r}");
    }

    #[test]
    fn intermediate_latency_tracks_cpi() {
        let (cpis, lats) = trajectory(Tier::Intermediate, 2, 500);
        let r = pearson(&cpis, &lats).unwrap();
        assert!(r > 0.4, "intermediate r={r}");
    }

    #[test]
    fn root_latency_decoupled_from_cpi() {
        let (cpis, lats) = trajectory(Tier::Root, 3, 500);
        let r = pearson(&cpis, &lats).unwrap();
        assert!(r.abs() < 0.35, "root r={r}");
    }

    #[test]
    fn demand_follows_diurnal_pattern() {
        let mut t = WebSearchTask::new(Tier::Leaf, 4);
        let mut rng = SimRng::new(9);
        let dt = SimDuration::from_secs(1);
        let peak: f64 = (0..50)
            .map(|_| t.demand(SimTime::from_hours(18), dt, &mut rng).cpu_want)
            .sum::<f64>()
            / 50.0;
        let trough: f64 = (0..50)
            .map(|_| t.demand(SimTime::from_hours(6), dt, &mut rng).cpu_want)
            .sum::<f64>()
            / 50.0;
        assert!(peak > trough * 1.4, "peak={peak} trough={trough}");
    }

    #[test]
    fn transactions_scale_inversely_with_cpi() {
        let t = WebSearchTask::new(Tier::Leaf, 5);
        let fast = t
            .transactions(&outcome(1.8), SimDuration::from_secs(1))
            .unwrap();
        let slow = t
            .transactions(&outcome(3.6), SimDuration::from_secs(1))
            .unwrap();
        assert!((fast / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tasks_with_different_seeds_differ() {
        let a = WebSearchTask::new(Tier::Leaf, 10);
        let b = WebSearchTask::new(Tier::Leaf, 11);
        assert_ne!(a.cpu_scale, b.cpu_scale);
    }
}
