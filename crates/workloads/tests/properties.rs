//! Property-based tests for the workload models.

use cpi2_sim::{SimDuration, SimTime, TaskAction, TaskModel, TickOutcome};
use cpi2_stats::rng::SimRng;
use cpi2_workloads::{
    factory, BatchTask, BimodalService, CacheThrasher, DiurnalPattern, LameDuckReplayer,
    MapReduceWorker, TurnTakingMember,
};
use proptest::prelude::*;

fn outcome(granted: f64, capped: bool) -> TickOutcome {
    TickOutcome {
        cpu_granted: granted,
        capped,
        cpi: 1.5,
        instructions: granted * 1e9,
        l3_misses: granted * 1e6,
    }
}

/// Drives any model for `ticks` and checks universal invariants:
/// non-negative finite demand, valid profile, sane thread counts.
fn check_model_invariants(model: &mut dyn TaskModel, ticks: i64, grant: f64) -> bool {
    let mut rng = SimRng::new(0);
    for i in 0..ticks {
        let now = SimTime::from_secs(i);
        let d = model.demand(now, SimDuration::from_secs(1), &mut rng);
        assert!(
            d.cpu_want.is_finite() && d.cpu_want >= 0.0,
            "demand {}",
            d.cpu_want
        );
        assert!(d.threads <= 10_000, "threads {}", d.threads);
        model.profile().validate().expect("valid profile");
        let o = outcome(d.cpu_want.min(grant), false);
        if model.observe(now, &o) == TaskAction::Exit {
            return false;
        }
        if let Some(t) = model.transactions(&o, SimDuration::from_secs(1)) {
            assert!(t.is_finite() && t >= 0.0);
        }
        if let Some(l) = model.request_latency_ms(&o) {
            assert!(l.is_finite() && l >= 0.0);
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn catalog_models_satisfy_invariants(seed in any::<u64>(), grant in 0.0..8.0f64) {
        for name in [
            "websearch-leaf",
            "websearch-intermediate",
            "websearch-root",
            "video-processing",
            "scientific-simulation",
            "compilation",
            "replayer",
            "bimodal-frontend",
            "bigtable-tablet",
            "storage-server",
        ] {
            let mut f = factory(name, seed);
            let mut m = f(0);
            check_model_invariants(m.as_mut(), 200, grant);
        }
    }

    #[test]
    fn diurnal_level_bounded(base in 0.1..5.0f64, amplitude in 0.0..1.0f64,
                             peak in 0.0..24.0f64, hour in 0..48i64) {
        let p = DiurnalPattern { base, amplitude, peak_hour: peak };
        let level = p.level(SimTime::from_hours(hour));
        prop_assert!(level >= 0.0);
        prop_assert!(level <= base * (1.0 + amplitude) + 1e-9);
    }

    #[test]
    fn thrasher_duty_cycle_matches_config(on in 1..300u32, off in 1..300u32, seed in any::<u64>()) {
        let mut t = CacheThrasher::new(6.0, on, off, seed);
        let mut rng = SimRng::new(0);
        let period = (on + off) as i64;
        let cycles = 5;
        let mut bursting = 0;
        for i in 0..period * cycles {
            let d = t.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            if d.cpu_want > 1.0 {
                bursting += 1;
            }
        }
        prop_assert_eq!(bursting, on as i64 * cycles);
    }

    #[test]
    fn replayer_threads_always_in_band(seed in any::<u64>(), cap_pattern in prop::collection::vec(any::<bool>(), 50..200)) {
        let mut r = LameDuckReplayer::new(3.0, seed);
        let mut rng = SimRng::new(1);
        for (i, &capped) in cap_pattern.iter().enumerate() {
            let d = r.demand(SimTime::from_secs(i as i64), SimDuration::from_secs(1), &mut rng);
            let granted = if capped { 0.05 } else { d.cpu_want };
            r.observe(SimTime::from_secs(i as i64), &outcome(granted, capped));
            prop_assert!((2..=80).contains(&r.threads()), "threads {}", r.threads());
        }
    }

    #[test]
    fn turn_taking_exactly_one_active(group in 2..8u32, slot_ticks in 1..120u32, t in 0..100_000i64) {
        let now = SimTime::from_secs(t);
        let mut rng = SimRng::new(2);
        let mut active = 0;
        for s in 0..group {
            let mut m = TurnTakingMember::new(s, group, slot_ticks, 5.0, 7);
            if m.demand(now, SimDuration::from_secs(1), &mut rng).cpu_want > 1.0 {
                active += 1;
            }
        }
        prop_assert_eq!(active, 1);
    }

    #[test]
    fn mapreduce_never_exits_without_capping(seed in any::<u64>()) {
        let mut w = MapReduceWorker::new(seed);
        let mut rng = SimRng::new(3);
        for i in 0..500 {
            let d = w.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            let act = w.observe(SimTime::from_secs(i), &outcome(d.cpu_want, false));
            prop_assert_eq!(act, TaskAction::Continue);
        }
    }

    #[test]
    fn bimodal_low_phase_under_floor(seed in any::<u64>()) {
        let mut s = BimodalService::new(seed);
        let mut rng = SimRng::new(4);
        // Walk a full period and check the phase contract: high-CPI profile
        // only ever coincides with sub-floor demand.
        for i in 0..(s.active_ticks + s.idle_ticks) as i64 {
            let p = s.profile();
            let d = s.demand(SimTime::from_secs(i), SimDuration::from_secs(1), &mut rng);
            if p.base_cpi > 5.0 {
                prop_assert!(d.cpu_want < 0.25, "housekeeping at {} cores", d.cpu_want);
            }
        }
    }

    #[test]
    fn batch_tps_nonnegative_and_scales(seed in any::<u64>(), instr in 0.0..1e12f64) {
        let t = BatchTask::transactional(seed);
        let o = TickOutcome {
            cpu_granted: 1.0,
            capped: false,
            cpi: 1.5,
            instructions: instr,
            l3_misses: 0.0,
        };
        let tx = t.transactions(&o, SimDuration::from_secs(1)).unwrap();
        prop_assert!(tx >= 0.0);
        let o2 = TickOutcome { instructions: instr * 2.0, ..o };
        let tx2 = t.transactions(&o2, SimDuration::from_secs(1)).unwrap();
        prop_assert!(tx2 >= tx);
    }
}
