//! Feedback-driven adaptive throttling — the paper's §9 future work.
//!
//! "Our fixed hard-capping limits are rather crude. We hope to introduce a
//! feedback-driven policy that dynamically adjusts the amount of
//! throttling to keep the victim CPI degradation just below an acceptable
//! threshold." This example implements that loop with
//! [`cpi2::core::AdaptiveThrottle`] and compares it with the fixed 0.01
//! cap: the adaptive policy restores the victim while leaving the
//! antagonist several times more CPU.
//!
//! Run: `cargo run --release --example adaptive_throttle`

use cpi2::core::{AdaptiveThrottle, Cpi2Config};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, ConstantLoad, JobSpec, Platform, ResourceProfile, SimDuration, TaskId,
};
use cpi2::workloads::LsService;

struct Setup {
    system: Cpi2Harness,
    victim: TaskId,
    antagonist: TaskId,
    machine: cpi2::sim::MachineId,
    spec_mean: f64,
}

fn build(seed: u64) -> Setup {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    let victim_job = cluster
        .submit_job(
            JobSpec::latency_sensitive("victim", 6, 1.2),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    let config = Cpi2Config {
        min_samples_per_task: 5,
        auto_throttle: false,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.run_for(SimDuration::from_mins(26));
    let specs = system.force_spec_refresh();
    let spec_mean = specs
        .iter()
        .find(|s| s.jobname == "victim")
        .unwrap()
        .cpi_mean;
    let ant_job = system
        .cluster
        .submit_job(
            JobSpec::best_effort("hog", 1, 1.0),
            true,
            Box::new(|_| Box::new(ConstantLoad::new(6.0, 8, ResourceProfile::streaming()))),
        )
        .expect("placement");
    let antagonist = TaskId {
        job: ant_job,
        index: 0,
    };
    let machine = system.cluster.locate(antagonist).unwrap();
    let victim = system
        .cluster
        .machine(machine)
        .unwrap()
        .tasks()
        .find(|t| t.id.job == victim_job)
        .map(|t| t.id)
        .expect("victim co-resident");
    Setup {
        system,
        victim,
        antagonist,
        machine,
        spec_mean,
    }
}

/// Runs 5 minutes and returns (victim mean CPI, antagonist mean CPU).
fn observe(s: &mut Setup) -> (f64, f64) {
    let mut cpi = 0.0;
    let mut cpu = 0.0;
    let mut n = 0u32;
    for _ in 0..300 {
        s.system.step();
        let m = s.system.cluster.machine(s.machine).unwrap();
        if let (Some(v), Some(a)) = (m.task(s.victim), m.task(s.antagonist)) {
            if let (Some(vo), Some(ao)) = (v.last_outcome(), a.last_outcome()) {
                cpi += vo.cpi;
                cpu += ao.cpu_granted;
                n += 1;
            }
        }
    }
    (cpi / n.max(1) as f64, cpu / n.max(1) as f64)
}

fn main() {
    // --- Fixed policy: always 0.01 CPU-sec/sec. -------------------------
    let mut fixed = build(2024);
    let (base_cpi, base_cpu) = observe(&mut fixed);
    println!(
        "uncapped: victim CPI {base_cpi:.2} ({:.1}x spec), antagonist {base_cpu:.2} cores",
        base_cpi / fixed.spec_mean
    );
    let mut fixed_cpis = Vec::new();
    let mut fixed_cpus = Vec::new();
    for _ in 0..5 {
        let until = fixed.system.cluster.now() + SimDuration::from_mins(5);
        fixed
            .system
            .cluster
            .apply_hard_cap(fixed.antagonist, 0.01, until);
        let (cpi, cpu) = observe(&mut fixed);
        fixed_cpis.push(cpi);
        fixed_cpus.push(cpu);
    }
    let fixed_cpi = fixed_cpis.iter().sum::<f64>() / fixed_cpis.len() as f64;
    let fixed_cpu = fixed_cpus.iter().sum::<f64>() / fixed_cpus.len() as f64;
    println!("fixed 0.01 cap: victim CPI {fixed_cpi:.2}, antagonist {fixed_cpu:.3} cores");

    // --- Adaptive policy: keep degradation just below 1.25x. -------------
    let mut adaptive = build(2024);
    observe(&mut adaptive); // Same uncapped phase for fairness.
    let mut throttle = AdaptiveThrottle::new(0.5, 1.25);
    println!("\nadaptive rounds (target degradation ≤ 1.25x):");
    let mut adaptive_cpi = 0.0;
    let mut adaptive_cpu = 0.0;
    for round in 0..5 {
        let rate = throttle.rate();
        let until = adaptive.system.cluster.now() + SimDuration::from_mins(5);
        adaptive
            .system
            .cluster
            .apply_hard_cap(adaptive.antagonist, rate, until);
        let (cpi, cpu) = observe(&mut adaptive);
        let degradation = cpi / adaptive.spec_mean;
        println!(
            "  round {}: cap {rate:.3} -> victim CPI {cpi:.2} ({degradation:.2}x), antagonist {cpu:.2} cores",
            round + 1
        );
        throttle.update(degradation);
        adaptive_cpi = cpi;
        adaptive_cpu = cpu;
    }

    println!("\ncomparison:");
    println!("  fixed:    victim {fixed_cpi:.2}, antagonist CPU {fixed_cpu:.3} cores");
    println!("  adaptive: victim {adaptive_cpi:.2}, antagonist CPU {adaptive_cpu:.3} cores");
    let degr = adaptive_cpi / adaptive.spec_mean;
    assert!(
        degr < 1.5,
        "adaptive policy should keep the victim near spec (got {degr:.2}x)"
    );
    assert!(
        adaptive_cpu > fixed_cpu * 2.0,
        "adaptive policy should leave the antagonist more CPU"
    );
    println!("\nadaptive_throttle OK (victim within {degr:.2}x of spec at {adaptive_cpu:.2} antagonist cores)");
}
