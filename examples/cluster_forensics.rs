//! Performance forensics with the Dremel-like query engine (§5).
//!
//! Runs a mixed cluster under CPI² for a few simulated hours, logs every
//! incident and sample, then answers the paper's example question — "find
//! the most aggressive antagonists for a job in a particular time window"
//! — with SQL.
//!
//! Run: `cargo run --release --example cluster_forensics`

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::pipeline::Dataset;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration};
use cpi2::workloads::{self, CacheThrasher};

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 99,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 15);
    for name in ["bigtable-tablet", "storage-server", "image-frontend"] {
        cluster
            .submit_job(
                JobSpec::latency_sensitive(name, 10, 1.2),
                true,
                workloads::factory(name, 3),
            )
            .expect("placement");
    }
    cluster
        .submit_job(
            JobSpec::best_effort("rogue-indexer", 5, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(8.0, 300, 420, 11 + i as u64))),
        )
        .expect("placement");
    cluster
        .submit_job(
            JobSpec::batch("nightly-compile", 5, 1.0),
            true,
            Box::new(|i| Box::new(cpi2::workloads::BatchTask::compilation(5 + i as u64))),
        )
        .expect("placement");

    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.record_samples = true;

    println!("running the cluster for 3 simulated hours...");
    system.run_for(SimDuration::from_mins(35));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_hours(3));
    println!(
        "collected {} samples, {} incidents, {} caps\n",
        system.samples.len(),
        system.incidents().len(),
        system.caps_applied()
    );

    // Load the logs into the query engine.
    let incidents: Vec<_> = system
        .incidents()
        .iter()
        .map(|mi| mi.incident.clone())
        .collect();
    let mut ds = Dataset::new();
    ds.insert_records("incidents", &incidents)
        .expect("serialize");
    ds.insert_records("samples", &system.samples)
        .expect("serialize");

    let queries = [
        (
            "Most aggressive antagonists (the paper's example query)",
            "SELECT suspects.0.jobname, count(*), max(suspects.0.correlation) \
             FROM incidents GROUP BY suspects.0.jobname ORDER BY count(*) DESC LIMIT 5",
        ),
        (
            "Victim jobs and their incident counts",
            "SELECT victim_job, count(*), avg(victim_cpi) FROM incidents \
             GROUP BY victim_job ORDER BY count(*) DESC",
        ),
        (
            "High-confidence incidents in the first simulated hour",
            "SELECT victim_job, victim_cpi, suspects.0.correlation FROM incidents \
             WHERE suspects.0.correlation >= 0.35 AND at < 5700000000 \
             ORDER BY suspects.0.correlation DESC LIMIT 5",
        ),
        (
            "Per-job CPI profile from the sample log",
            "SELECT jobname, count(*), avg(cpi), max(cpi) FROM samples \
             GROUP BY jobname ORDER BY avg(cpi) DESC",
        ),
    ];
    for (title, sql) in queries {
        println!("-- {title}\n   {sql}");
        match ds.query(sql) {
            Ok(result) => println!("{result}"),
            Err(e) => println!("   error: {e}\n"),
        }
    }

    assert!(!incidents.is_empty(), "expected incidents to query");
    println!("cluster_forensics OK");
}
