//! The operator's day with CPI² — the §5 interface, end to end.
//!
//! The paper: "We provide an interface to system operators so they can
//! hard-cap suspects, and turn CPI protection on or off for an entire
//! cluster. Since our applications are written to tolerate failures, an
//! operator may choose to kill an antagonist task and restart it somewhere
//! else if it is a persistent offender."
//!
//! This example walks that playbook: watch incidents with protection off,
//! investigate with SQL, cap manually, enable auto-protection, and finally
//! migrate a persistent offender.
//!
//! Run: `cargo run --release --example operator_playbook`

use cpi2::core::Cpi2Config;
use cpi2::harness::{task_for, Cpi2Harness};
use cpi2::pipeline::Dataset;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::{CacheThrasher, LsService};

fn main() {
    // A small serving cluster.
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 2718,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 8);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("checkout-frontend", 12, 1.2),
            true,
            Box::new(|i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    100 + i as u64,
                ))
            }),
        )
        .expect("placement");

    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);

    println!("08:00  specs learned from the overnight window");
    system.run_for(SimDuration::from_mins(30));
    for s in system.force_spec_refresh() {
        println!("       {s}");
    }

    println!("\n09:00  cluster rollout policy: detection on, enforcement OFF");
    system.set_protection_enabled(false);
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("reindex-batch", 2, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(8.0, 300, 300, 55 + i as u64))),
        )
        .expect("placement");
    system.run_for(SimDuration::from_mins(45));
    println!(
        "       pages so far: {} incidents, {} caps (enforcement is off)",
        system.incidents().len(),
        system.caps_applied()
    );
    assert!(system.caps_applied() == 0);

    println!("\n09:45  operator investigates with SQL over the incident log");
    let incidents: Vec<_> = system
        .incidents()
        .iter()
        .map(|mi| mi.incident.clone())
        .collect();
    let mut ds = Dataset::new();
    ds.insert_records("incidents", &incidents).expect("records");
    let report = ds
        .query(
            "SELECT suspects.0.jobname, count(*), max(suspects.0.correlation) \
             FROM incidents WHERE suspects.0.correlation >= 0.35 \
             GROUP BY suspects.0.jobname ORDER BY count(*) DESC LIMIT 3",
        )
        .expect("query");
    println!("{report}");

    // Pick the top suspect task from the most confident incident.
    let top = incidents
        .iter()
        .filter_map(|i| i.top_suspect())
        .max_by(|a, b| a.correlation.partial_cmp(&b.correlation).unwrap())
        .expect("suspects exist");
    println!(
        "       verdict: '{}' at correlation {:.2} — cap it manually",
        top.jobname, top.correlation
    );
    let suspect_task = task_for(top.task);
    assert!(system.operator_cap(suspect_task, 0.1, SimDuration::from_mins(10)));
    system.run_for(SimDuration::from_mins(10));

    println!("\n10:00  satisfied, the operator turns automatic protection ON");
    system.set_protection_enabled(true);
    system.run_for(SimDuration::from_hours(1));
    println!(
        "       automatic caps since: {}",
        system.caps_applied().saturating_sub(1)
    );

    println!("\n11:00  the offender keeps coming back — migrate it away");
    let before_machine = system.cluster.locate(suspect_task);
    match system.operator_migrate(suspect_task) {
        Some(new_machine) => println!(
            "       moved {suspect_task:?} from {:?} to {new_machine}",
            before_machine.expect("was placed")
        ),
        None => println!("       task already gone (it may have been respawned elsewhere)"),
    }

    println!("\n11:05  end-of-morning report");
    for (job, n, corr) in system.top_antagonists(3) {
        println!("       {job:<16} capped {n}x (max correlation {corr:.2})");
    }
    assert!(
        system.caps_applied() >= 1,
        "the playbook should have capped"
    );
    println!("\noperator_playbook OK");
}
