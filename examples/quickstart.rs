//! Quickstart: the CPI² core pipeline on hand-made samples.
//!
//! Shows the four steps of the paper on plain data, without the cluster
//! simulator: (1) learn a CPI spec from samples, (2) detect an anomalous
//! task, (3) identify the antagonist by correlation, (4) decide the hard
//! cap.
//!
//! Run: `cargo run --example quickstart`

use cpi2::core::{
    cap_for, Agent, AgentCommand, Cpi2Config, CpiSample, SpecBuilder, TaskClass, TaskHandle,
};

fn sample(task: u64, job: &str, minute: i64, cpi: f64, usage: f64, class: TaskClass) -> CpiSample {
    CpiSample {
        task: TaskHandle(task),
        jobname: job.into(),
        platforminfo: "westmere".into(),
        timestamp: minute * 60_000_000,
        cpu_usage: usage,
        cpi,
        l3_mpki: 0.0,
        class,
    }
}

fn main() {
    let config = Cpi2Config::default();

    // 1. Learn the job's normal behaviour: 10 tasks, ~200 samples each,
    //    CPI ≈ 1.8 ± a little (the paper's web-search spec).
    let mut builder = SpecBuilder::new(config.clone());
    for task in 0..10u64 {
        for minute in 0..200 {
            let cpi = 1.8 + 0.05 * ((task as f64 + minute as f64 * 0.7).sin());
            builder.add_sample(&sample(
                task,
                "websearch",
                minute,
                cpi,
                1.0,
                TaskClass::latency_sensitive(),
            ));
        }
    }
    let specs = builder.roll_period();
    let spec = &specs[0];
    println!("learned spec: {spec}");
    println!(
        "2-sigma outlier threshold: {:.2}\n",
        spec.outlier_threshold(config.outlier_sigma)
    );

    // 2–4. Run the per-machine agent: a victim whose CPI doubles whenever
    //      the co-resident batch job burns CPU.
    let mut agent = Agent::new(config);
    agent.install_spec(spec.clone());
    let mut commands: Vec<AgentCommand> = Vec::new();
    for minute in 0..12 {
        let bursting = minute % 2 == 1;
        let batch = vec![
            sample(
                0,
                "websearch",
                minute,
                if bursting { 4.0 } else { 1.8 },
                1.0,
                TaskClass::latency_sensitive(),
            ),
            sample(
                100,
                "batch-hog",
                minute,
                2.0,
                if bursting { 6.0 } else { 0.1 },
                TaskClass::best_effort(),
            ),
            sample(101, "innocent", minute, 1.2, 0.5, TaskClass::batch()),
        ];
        commands.extend(agent.ingest(&batch));
    }

    for incident in agent.incidents() {
        println!(
            "incident at minute {}: victim={} cpi={:.2} (threshold {:.2})",
            incident.at / 60_000_000,
            incident.victim_job,
            incident.victim_cpi,
            incident.cthreshold
        );
        for s in incident.suspects.iter().take(3) {
            println!(
                "  suspect {:<10} correlation {:+.2}",
                s.jobname, s.correlation
            );
        }
    }
    let cmd = commands.first().expect("agent should have acted");
    let AgentCommand::ApplyHardCap {
        target_job,
        cpu_rate,
        ..
    } = cmd;
    println!("\nagent decision: hard-cap '{target_job}' to {cpu_rate} CPU-sec/sec");

    // The §5 policy table, for reference.
    let batch_cap = cap_for(TaskClass::batch(), agent.config()).unwrap();
    let be_cap = cap_for(TaskClass::best_effort(), agent.config()).unwrap();
    println!(
        "policy: batch → {} CPU-sec/sec, best-effort → {} CPU-sec/sec, {} s at a time",
        batch_cap.cpu_rate,
        be_cap.cpu_rate,
        batch_cap.duration_us / 1_000_000
    );
    assert_eq!(target_job, "batch-hog");
    println!("\nquickstart OK");
}
