//! A web-search cluster defended by CPI², end to end.
//!
//! The workload the paper's introduction motivates: latency-sensitive
//! search serving sharing machines with batch work. A cache-thrashing
//! batch job lands mid-run; CPI² learns specs, detects the victims,
//! identifies the thrasher and hard-caps it automatically, and search
//! latency recovers.
//!
//! Run: `cargo run --release --example websearch_interference`

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration};
use cpi2::workloads::{self, CacheThrasher};

/// Mean leaf-node request latency right now, ms.
fn search_latency(system: &Cpi2Harness) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u32;
    for m in system.cluster.machines() {
        for t in m.tasks() {
            if t.job_name != "websearch-leaf" {
                continue;
            }
            if let Some(o) = t.last_outcome() {
                if let Some(l) = t.model().request_latency_ms(o) {
                    sum += l;
                    n += 1;
                }
            }
        }
    }
    sum / n.max(1) as f64
}

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 77,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 12);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("websearch-leaf", 12, 2.0),
            true,
            workloads::factory("websearch-leaf", 7),
        )
        .expect("placement");

    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);

    println!("phase 1: clean serving, learning CPI specs (40 min)...");
    system.run_for(SimDuration::from_mins(40));
    for spec in system.force_spec_refresh() {
        println!("  spec: {spec}");
    }
    let clean_latency = search_latency(&system);
    println!("  clean mean leaf latency: {clean_latency:.1} ms");

    println!("\nphase 2: batch cache-thrashers land on the cluster...");
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("indexer-batch", 4, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(8.0, 300, 300, 7 + i as u64))),
        )
        .expect("placement");
    system.run_for(SimDuration::from_mins(10));
    let degraded_latency = search_latency(&system);
    println!("  degraded mean leaf latency: {degraded_latency:.1} ms");

    println!("\nphase 3: CPI² detects, correlates, and hard-caps (40 min)...");
    system.run_for(SimDuration::from_mins(40));
    println!(
        "  incidents: {}, hard caps applied: {}",
        system.incidents().len(),
        system.caps_applied()
    );
    for mi in system
        .incidents()
        .iter()
        .filter(|m| m.incident.acted())
        .take(3)
    {
        let top = mi.incident.top_suspect().unwrap();
        println!(
            "  {}: victim {} cpi {:.2}, capped '{}' (correlation {:.2})",
            mi.machine,
            mi.incident.victim_job,
            mi.incident.victim_cpi,
            top.jobname,
            top.correlation
        );
    }
    let protected_latency = search_latency(&system);
    println!("  protected mean leaf latency: {protected_latency:.1} ms");

    assert!(
        degraded_latency > clean_latency * 1.1,
        "thrashers should visibly hurt latency ({clean_latency:.1} -> {degraded_latency:.1})"
    );
    assert!(system.caps_applied() >= 1, "CPI2 should have capped");
    println!(
        "\nwebsearch_interference OK (latency {clean_latency:.0} → {degraded_latency:.0} → {protected_latency:.0} ms)"
    );
}
