//! End-to-end CPI² deployment harness: cluster + samplers + per-machine
//! agents + aggregation pipeline, advanced under one clock.
//!
//! This is the Fig. 6 system assembled: every simulated machine gets a
//! duty-cycle counter sampler and a local management agent; samples flow
//! up to the aggregation service, refreshed CPI specs flow back down, and
//! agent hard-cap commands are executed against the machine's cgroups.

use cpi2_core::{
    Agent, AgentCommand, Cpi2Config, CpiSample, CpiSpec, Incident, IncidentAction, TaskClass,
    TaskHandle, TraceId, TraceLog, TraceSpan, TraceStage,
};
use cpi2_perf::{ClusterSampler, CounterReading};
use cpi2_pipeline::{Aggregator, Collector, CollectorHandle, RetryQueue, SpecStore};
use cpi2_sim::{
    Cluster, FaultPlan, JobId, MachineId, SchedClass, ShipmentFate, SimDuration, SimTime, TaskId,
};
use cpi2_telemetry::{Counter, Telemetry};
use std::collections::{BTreeMap, HashMap};

/// Converts a simulator task id into the agent-facing opaque handle.
pub fn handle_for(task: TaskId) -> TaskHandle {
    TaskHandle(((task.job.0 as u64) << 32) | task.index as u64)
}

/// Recovers the simulator task id from a handle produced by [`handle_for`].
pub fn task_for(handle: TaskHandle) -> TaskId {
    TaskId {
        job: JobId((handle.0 >> 32) as u32),
        index: (handle.0 & 0xFFFF_FFFF) as u32,
    }
}

/// Maps a scheduling class to the agent-facing task class.
pub fn class_for(class: SchedClass) -> TaskClass {
    match class {
        SchedClass::LatencySensitive => TaskClass::latency_sensitive(),
        SchedClass::Batch => TaskClass::batch(),
        SchedClass::BestEffort => TaskClass::best_effort(),
    }
}

/// An incident together with the machine whose agent reported it.
#[derive(Debug, Clone)]
pub struct MachineIncident {
    /// The reporting machine.
    pub machine: MachineId,
    /// The incident.
    pub incident: Incident,
}

/// Cached telemetry handles for injected faults and degraded-mode events.
#[derive(Debug, Clone, Default)]
struct FaultMetrics {
    machine_crashes: Counter,
    agent_restarts: Counter,
    shipments_dropped: Counter,
    shipments_delayed: Counter,
    shipments_duplicated: Counter,
    spec_sync_stale: Counter,
}

impl FaultMetrics {
    fn new(telemetry: &Telemetry) -> FaultMetrics {
        FaultMetrics {
            machine_crashes: telemetry.counter("cpi_fault_machine_crashes_total", &[]),
            agent_restarts: telemetry.counter("cpi_fault_agent_restarts_total", &[]),
            shipments_dropped: telemetry.counter("cpi_fault_shipments_dropped_total", &[]),
            shipments_delayed: telemetry.counter("cpi_fault_shipments_delayed_total", &[]),
            shipments_duplicated: telemetry.counter("cpi_fault_shipments_duplicated_total", &[]),
            spec_sync_stale: telemetry.counter("cpi_fault_spec_sync_stale_total", &[]),
        }
    }
}

/// The assembled CPI² system over a simulated cluster.
pub struct Cpi2Harness {
    /// The cluster under management.
    pub cluster: Cluster,
    config: Cpi2Config,
    sampler: ClusterSampler,
    agents: HashMap<MachineId, Agent>,
    agent_versions: HashMap<MachineId, u64>,
    /// The spec aggregation service.
    pub aggregator: Aggregator,
    /// The versioned spec store.
    pub spec_store: SpecStore,
    /// Telemetry handle shared by every component (adopted from the
    /// cluster's [`cpi2_sim::ClusterConfig::telemetry`]).
    telemetry: Telemetry,
    /// The cluster-wide collector (Fig. 6's left half): per-machine
    /// sample batches travel through its bounded channel before reaching
    /// the aggregation service, so back-pressure loss is modeled and
    /// counted instead of assumed away.
    collector: Collector,
    collector_handle: CollectorHandle,
    incidents: Vec<MachineIncident>,
    /// When true, every sample is retained in [`Cpi2Harness::samples`]
    /// (off by default: long runs produce millions).
    pub record_samples: bool,
    /// Retained samples (only when `record_samples` is set).
    pub samples: Vec<CpiSample>,
    caps_applied: u64,
    /// Cluster-wide protection switch (§5's operator interface: "turn CPI
    /// protection on or off for an entire cluster"). When off, agents
    /// still detect and report but cap commands are dropped.
    protection_enabled: bool,
    /// §9 future work: automatic antagonist-aware placement. When set,
    /// a (victim job, antagonist job) pair capped this many times gets an
    /// anti-affinity constraint and the antagonist is migrated away.
    pub placement_feedback_after: Option<u32>,
    offense_counts: HashMap<(JobId, JobId), u32>,
    migrations_triggered: u64,
    /// Case-4 remediation: a victim that keeps being anomalous with *no*
    /// cappable antagonist (chronic neighbourhood contention) is migrated
    /// to another machine after this many no-action incidents. "The
    /// correct response in a case like this would be to migrate the
    /// victim" (§6.1).
    pub migrate_chronic_victims_after: Option<u32>,
    chronic_counts: HashMap<TaskId, u32>,
    victim_migrations: u64,
    /// Active fault-injection plan, if any ([`Cpi2Harness::set_fault_plan`]).
    fault_plan: Option<FaultPlan>,
    /// Agent-side bounded retry for shipments the collector couldn't take.
    retry_queue: RetryQueue,
    /// Shipments held back by injected delay: delivery time (µs) → batches.
    delayed_shipments: BTreeMap<i64, Vec<Vec<CpiSample>>>,
    fault_metrics: FaultMetrics,
    agent_restarts: u64,
    machine_crashes: u64,
    shipment_faults: u64,
    /// End-to-end incident traces: bounded span chains keyed by trace ID
    /// (detection spans from the agents, amelioration spans appended here
    /// when caps execute). Served by `cpi2-serve` at
    /// `GET /incidents/{id}/trace`.
    trace_log: TraceLog,
}

impl Cpi2Harness {
    /// Wraps a cluster with a full CPI² deployment. The harness adopts
    /// the cluster's telemetry handle
    /// ([`cpi2_sim::ClusterConfig::telemetry`]), so enabling telemetry
    /// there instruments the whole stack — samplers, agents, collector,
    /// aggregator and spec store included.
    pub fn new(cluster: Cluster, config: Cpi2Config) -> Self {
        let start = cluster.now().as_us();
        let telemetry = cluster.telemetry().clone();
        let collector =
            Collector::with_telemetry((cluster.machines().len() * 4).max(1024), &telemetry);
        let collector_handle = collector.handle();
        let mut aggregator = Aggregator::new(config.clone(), start);
        aggregator.set_telemetry(&telemetry);
        // Idempotent ingest: duplicated shipments (sender retries, fault
        // injection) must not skew spec statistics. One hour comfortably
        // covers the worst redelivery delay the harness can produce.
        aggregator.set_dedup_horizon(Some(3_600_000_000));
        let mut spec_store = SpecStore::new();
        spec_store.set_telemetry(&telemetry);
        let mut retry_queue = RetryQueue::default();
        retry_queue.set_telemetry(&telemetry);
        let fault_metrics = FaultMetrics::new(&telemetry);
        Cpi2Harness {
            cluster,
            config,
            sampler: ClusterSampler::with_telemetry(&telemetry),
            agents: HashMap::new(),
            agent_versions: HashMap::new(),
            aggregator,
            spec_store,
            telemetry,
            collector,
            collector_handle,
            incidents: Vec::new(),
            record_samples: false,
            samples: Vec::new(),
            caps_applied: 0,
            protection_enabled: true,
            placement_feedback_after: None,
            offense_counts: HashMap::new(),
            migrations_triggered: 0,
            migrate_chronic_victims_after: None,
            chronic_counts: HashMap::new(),
            victim_migrations: 0,
            fault_plan: None,
            retry_queue,
            delayed_shipments: BTreeMap::new(),
            fault_metrics,
            agent_restarts: 0,
            machine_crashes: 0,
            shipment_faults: 0,
            trace_log: TraceLog::default(),
        }
    }

    /// The end-to-end incident trace log (bounded; oldest traces evicted).
    pub fn trace_log(&self) -> &TraceLog {
        &self.trace_log
    }

    /// The span chain for one incident trace, causal order.
    pub fn incident_trace(&self, id: TraceId) -> Option<&[TraceSpan]> {
        self.trace_log.get(id)
    }

    /// Victims migrated by the chronic-contention policy.
    pub fn victim_migrations(&self) -> u64 {
        self.victim_migrations
    }

    /// Turns cluster-wide CPI protection on or off (the §5 operator
    /// interface). Detection and reporting continue either way.
    pub fn set_protection_enabled(&mut self, enabled: bool) {
        self.protection_enabled = enabled;
    }

    /// Whether cap commands are currently executed.
    pub fn protection_enabled(&self) -> bool {
        self.protection_enabled
    }

    /// Operator action: manually hard-cap a task (§5: "we provide an
    /// interface to system operators so they can hard-cap suspects").
    pub fn operator_cap(&mut self, task: TaskId, cpu_rate: f64, duration: SimDuration) -> bool {
        let until = self.cluster.now() + duration;
        let ok = self.cluster.apply_hard_cap(task, cpu_rate, until);
        if ok {
            self.caps_applied += 1;
        }
        ok
    }

    /// Operator action: kill a persistent offender and restart it on
    /// another machine — "our version of task migration" (§5).
    pub fn operator_migrate(&mut self, task: TaskId) -> Option<MachineId> {
        self.cluster.migrate_task(task).ok()
    }

    /// Aggregates the incident log into "most aggressive antagonists"
    /// rows: `(job name, incidents acted on, max correlation)`, sorted by
    /// count. The operator's forensics overview (§5).
    pub fn top_antagonists(&self, limit: usize) -> Vec<(String, u64, f64)> {
        let mut agg: HashMap<String, (u64, f64)> = HashMap::new();
        for mi in &self.incidents {
            if let cpi2_core::IncidentAction::HardCap { target_job, .. } = &mi.incident.action {
                let top_corr = mi
                    .incident
                    .top_suspect()
                    .map(|s| s.correlation)
                    .unwrap_or(0.0);
                let e = agg.entry(target_job.clone()).or_insert((0, 0.0));
                e.0 += 1;
                e.1 = e.1.max(top_corr);
            }
        }
        let mut rows: Vec<(String, u64, f64)> =
            agg.into_iter().map(|(k, (n, c))| (k, n, c)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(limit);
        rows
    }

    /// Migrations triggered by automatic placement feedback.
    pub fn migrations_triggered(&self) -> u64 {
        self.migrations_triggered
    }

    /// The CPI² configuration in force.
    pub fn config(&self) -> &Cpi2Config {
        &self.config
    }

    /// The telemetry handle every component reports to (disabled unless
    /// the cluster was built with one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Sample batches dropped by the collector under back-pressure.
    pub fn collector_dropped(&self) -> u64 {
        self.collector.dropped()
    }

    /// All incidents reported so far (across machines).
    pub fn incidents(&self) -> &[MachineIncident] {
        &self.incidents
    }

    /// Total hard caps the system has applied.
    pub fn caps_applied(&self) -> u64 {
        self.caps_applied
    }

    /// The agent on a machine, if one has been instantiated (agents are
    /// created lazily at a machine's first sample).
    pub fn agent(&self, machine: MachineId) -> Option<&Agent> {
        self.agents.get(&machine)
    }

    /// Advances the system by one cluster tick: machines run, samplers
    /// poll, agents detect/correlate/cap, the aggregator ingests, and spec
    /// refreshes propagate.
    pub fn step(&mut self) {
        let prev = self.cluster.now();
        self.cluster.step();
        let now = self.cluster.now();

        // Fault phase: fire every machine crash and agent restart that
        // came due inside this tick, in machine-id order so runs are
        // deterministic at any parallelism. A crash takes the machine's
        // agent daemon down with it; a bare agent restart loses the
        // agent's in-memory state (violation windows, spec cache) while
        // resident tasks keep running.
        if let Some(plan) = self.fault_plan.clone() {
            let machine_count = self.cluster.machines().len();
            for i in 0..machine_count {
                let machine_id = self.cluster.machines()[i].id;
                if plan.machine_crash_due(machine_id, prev, now) {
                    self.cluster.crash_machine(machine_id);
                    self.agents.remove(&machine_id);
                    self.agent_versions.remove(&machine_id);
                    self.machine_crashes += 1;
                    self.fault_metrics.machine_crashes.inc();
                } else if plan.agent_restart_due(machine_id, prev, now) {
                    self.agents.remove(&machine_id);
                    self.agent_versions.remove(&machine_id);
                    self.agent_restarts += 1;
                    self.fault_metrics.agent_restarts.inc();
                }
            }
        }

        // Sample every machine and run its agent.
        let mut pending_caps: Vec<(TaskId, f64, SimTime, TraceId)> = Vec::new();
        let mut chronic_victims: Vec<TaskId> = Vec::new();
        let machine_count = self.cluster.machines().len();
        for i in 0..machine_count {
            let machine = &self.cluster.machines()[i];
            let readings = self.sampler.poll(machine, now);
            if readings.is_empty() {
                continue;
            }
            let batch: Vec<CpiSample> = readings
                .iter()
                .filter_map(|r| {
                    let t = machine.task(r.task)?;
                    Some(to_sample(r, class_for(t.class)))
                })
                .collect();
            let machine_id = machine.id;

            if self.record_samples {
                self.samples.extend(batch.iter().cloned());
            }

            // Sync specs down to the agent, then let it analyze.
            let agent = self.agents.entry(machine_id).or_insert_with(|| {
                let mut a = Agent::new(self.config.clone());
                a.set_telemetry(&self.telemetry);
                a
            });
            let since = self.agent_versions.entry(machine_id).or_insert(0);
            // Spec sync, possibly through a stale replica: a faulted sync
            // serves this machine an older store snapshot. Specs carry
            // their pipeline publish time so the agent's staleness TTL
            // keys off data age, not install time.
            let stale_lag = match &self.fault_plan {
                Some(p) if p.stale_sync(machine_id, now) => p.profile().stale_lag,
                _ => 0,
            };
            if stale_lag > 0 {
                self.fault_metrics.spec_sync_stale.inc();
                let snap = self.spec_store.lagged_snapshot(stale_lag);
                if *since < snap.version() {
                    for (spec, published_at) in snap.changed_since_with_age(*since) {
                        agent.install_spec_at(spec, published_at);
                    }
                    *since = snap.version();
                }
            } else {
                let store_version = self.spec_store.version();
                if *since < store_version {
                    for (spec, published_at) in self.spec_store.changed_since_with_age(*since) {
                        agent.install_spec_at(spec, published_at);
                    }
                    *since = store_version;
                }
            }
            let commands = agent.ingest(&batch);
            for inc in agent.take_incidents() {
                // §9 placement-feedback bookkeeping: count repeat offences
                // per (victim job, antagonist job) pair.
                if let cpi2_core::IncidentAction::HardCap { target, .. } = &inc.action {
                    let pair = (task_for(inc.victim).job, task_for(*target).job);
                    *self.offense_counts.entry(pair).or_insert(0) += 1;
                }
                // Case-4 bookkeeping: repeated anomalies with nothing to cap.
                if let (Some(limit), cpi2_core::IncidentAction::None { .. }) =
                    (self.migrate_chronic_victims_after, &inc.action)
                {
                    let victim = task_for(inc.victim);
                    let n = self.chronic_counts.entry(victim).or_insert(0);
                    *n += 1;
                    if *n >= limit {
                        self.chronic_counts.remove(&victim);
                        chronic_victims.push(victim);
                    }
                }
                self.incidents.push(MachineIncident {
                    machine: machine_id,
                    incident: inc,
                });
            }
            for span in agent.take_trace_spans() {
                self.trace_log.record(span);
            }
            for cmd in commands {
                let AgentCommand::ApplyHardCap {
                    target,
                    cpu_rate,
                    until,
                    trace,
                    ..
                } = cmd;
                pending_caps.push((task_for(target), cpu_rate, SimTime(until), trace));
            }

            // Detection ran locally (§4.1); now push the batch up the
            // collection pipeline through the fault layer. A dropped or
            // delayed shipment degrades aggregation only — local
            // detection already happened.
            let fate = match &self.fault_plan {
                Some(p) => p.shipment_fate(machine_id, now),
                None => ShipmentFate::Deliver,
            };
            match fate {
                ShipmentFate::Deliver => {
                    self.retry_queue
                        .send_or_queue(&self.collector_handle, batch, now.as_us());
                }
                ShipmentFate::Drop => {
                    self.shipment_faults += 1;
                    self.fault_metrics.shipments_dropped.inc();
                }
                ShipmentFate::Delay(ticks) => {
                    self.shipment_faults += 1;
                    self.fault_metrics.shipments_delayed.inc();
                    let deliver_at = now.as_us() + self.cluster.tick_len().as_us() * ticks as i64;
                    self.delayed_shipments
                        .entry(deliver_at)
                        .or_default()
                        .push(batch);
                }
                ShipmentFate::Duplicate => {
                    self.shipment_faults += 1;
                    self.fault_metrics.shipments_duplicated.inc();
                    self.retry_queue.send_or_queue(
                        &self.collector_handle,
                        batch.clone(),
                        now.as_us(),
                    );
                    self.retry_queue
                        .send_or_queue(&self.collector_handle, batch, now.as_us());
                }
            }
        }

        // Release shipments whose injected delay has elapsed, then give
        // parked (backpressured) batches another chance.
        let still_delayed = self.delayed_shipments.split_off(&(now.as_us() + 1));
        let due = std::mem::replace(&mut self.delayed_shipments, still_delayed);
        for (_, batches) in due {
            for batch in batches {
                self.retry_queue
                    .send_or_queue(&self.collector_handle, batch, now.as_us());
            }
        }
        self.retry_queue.flush(&self.collector_handle, now.as_us());

        // Drain collected batches into the aggregation service.
        self.collector.drain_into(&mut self.aggregator);

        // Execute cap commands against the cluster (unless the operator
        // turned protection off for the cluster).
        if self.protection_enabled {
            for (task, rate, until, trace) in pending_caps {
                if self.cluster.apply_hard_cap(task, rate, until) {
                    self.caps_applied += 1;
                    // Close the loop in the incident trace: the cap the
                    // decision called for actually executed.
                    let span = TraceSpan {
                        trace,
                        stage: TraceStage::Amelioration,
                        start_us: now.as_us(),
                        end_us: until.as_us(),
                        detail: format!(
                            "hard_cap task={}/{} rate={rate} until={}",
                            task.job.0,
                            task.index,
                            until.as_us()
                        ),
                    };
                    self.telemetry.event("trace", || span.event_line());
                    self.trace_log.record(span);
                }

                // §9 future work: once a pair offends repeatedly, teach the
                // scheduler to keep them apart and move the offender now.
                if let Some(threshold) = self.placement_feedback_after {
                    let victim_jobs: Vec<JobId> = self
                        .offense_counts
                        .iter()
                        .filter(|(&(_, a), &n)| a == task.job && n >= threshold)
                        .map(|(&(v, _), _)| v)
                        .collect();
                    if !victim_jobs.is_empty() {
                        for v in victim_jobs {
                            self.cluster.scheduler_mut().add_anti_affinity(v, task.job);
                            self.offense_counts.remove(&(v, task.job));
                        }
                        if self.cluster.migrate_task(task).is_ok() {
                            self.migrations_triggered += 1;
                        }
                    }
                }
            }
        }

        // Migrate chronically contended victims to fresh machines.
        for victim in chronic_victims {
            if self.cluster.migrate_task(victim).is_ok() {
                self.victim_migrations += 1;
            }
        }

        // Roll the aggregation period when due.
        self.aggregator.maybe_refresh(now.as_us(), &self.spec_store);
    }

    /// Runs the system for a duration (whole ticks).
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.cluster.now() + duration;
        while self.cluster.now() < end {
            self.step();
        }
    }

    /// Forces an immediate spec refresh and distribution — used by
    /// experiments to bootstrap specs after a warm-up phase instead of
    /// waiting 24 simulated hours.
    pub fn force_spec_refresh(&mut self) -> Vec<CpiSpec> {
        self.aggregator
            .refresh_at(&self.spec_store, self.cluster.now().as_us())
    }

    /// Installs a spec directly into the store (bypassing aggregation) —
    /// for experiments with known ground-truth specs.
    pub fn install_spec(&mut self, spec: CpiSpec) {
        self.spec_store.publish(vec![spec]);
    }

    /// Arms (or with `None`, disarms) deterministic fault injection. The
    /// plan takes effect on the next [`Cpi2Harness::step`].
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Injected agent restarts fired so far (excluding machine crashes,
    /// which also take the agent down but are counted separately).
    pub fn agent_restarts(&self) -> u64 {
        self.agent_restarts
    }

    /// Injected machine crashes fired so far.
    pub fn machine_crashes(&self) -> u64 {
        self.machine_crashes
    }

    /// Injected shipment faults (drops + delays + duplications) so far.
    pub fn shipment_faults(&self) -> u64 {
        self.shipment_faults
    }

    /// Sample batches parked agent-side awaiting a collector retry.
    pub fn shipments_pending_retry(&self) -> usize {
        self.retry_queue.pending()
    }

    /// Sample batches abandoned after exhausting collector retries.
    pub fn shipments_abandoned(&self) -> u64 {
        self.retry_queue.abandoned_batches()
    }

    /// The spec-store version a machine's agent has synced up to (`None`
    /// if the machine has no live agent yet).
    pub fn agent_spec_version(&self, machine: MachineId) -> Option<u64> {
        self.agent_versions.get(&machine).copied()
    }

    /// Renders every incident as one stable text line (victim, CPI,
    /// ranked suspect, action, target) — the golden-trace format used by
    /// the fixed-seed regression fixtures.
    pub fn incident_lines(&self) -> Vec<String> {
        self.incidents
            .iter()
            .map(|mi| {
                let inc = &mi.incident;
                let suspect = inc
                    .top_suspect()
                    .map(|s| format!("{}@{:.3}", s.jobname, s.correlation))
                    .unwrap_or_else(|| "-".to_string());
                let (action, target) = match &inc.action {
                    IncidentAction::HardCap {
                        target,
                        target_job,
                        cpu_rate,
                        ..
                    } => (
                        "hard_cap",
                        format!("{}:{}@{}", target.0, target_job, cpu_rate),
                    ),
                    IncidentAction::None { reason } => ("none", reason.clone()),
                };
                format!(
                    "t={} machine={} victim={}/{} cpi={:.4} suspect={} action={} target={}",
                    inc.at,
                    mi.machine.0,
                    inc.victim.0,
                    inc.victim_job,
                    inc.victim_cpi,
                    suspect,
                    action,
                    target
                )
            })
            .collect()
    }
}

fn to_sample(r: &CounterReading, class: TaskClass) -> CpiSample {
    CpiSample {
        task: handle_for(r.task),
        jobname: r.job_name.clone(),
        platforminfo: r.platform.clone(),
        timestamp: r.timestamp.as_us(),
        cpu_usage: r.cpu_usage,
        cpi: r.cpi.unwrap_or(0.0),
        l3_mpki: r.l3_mpki,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        let id = TaskId {
            job: JobId(12345),
            index: 678,
        };
        assert_eq!(task_for(handle_for(id)), id);
    }

    #[test]
    fn class_mapping() {
        assert!(class_for(SchedClass::LatencySensitive).protected);
        assert!(class_for(SchedClass::Batch).throttle_eligible());
        assert!(class_for(SchedClass::BestEffort).best_effort);
    }

    #[test]
    fn harness_wires_telemetry_end_to_end() {
        use cpi2_sim::{ClusterConfig, JobSpec, Platform};

        let telemetry = Telemetry::enabled();
        let mut cluster = cpi2_sim::Cluster::new(ClusterConfig {
            telemetry: telemetry.clone(),
            ..ClusterConfig::default()
        });
        cluster.add_machines(&Platform::westmere(), 2);
        cluster
            .submit_job(
                JobSpec::latency_sensitive("svc", 4, 1.0),
                true,
                cpi2_workloads::factory("websearch-leaf", 42),
            )
            .unwrap();
        let mut system = Cpi2Harness::new(cluster, Cpi2Config::default());
        system.run_for(SimDuration::from_mins(3));
        assert!(system.telemetry().is_enabled());
        let text = system.telemetry().prometheus_text().unwrap();
        // Every layer reported into the one registry.
        for metric in [
            "cpi_sim_ticks_total",
            "cpi_sampler_windows_total",
            "cpi_agent_samples_total",
            "cpi_collector_messages_total",
            "cpi_aggregator_samples_total",
        ] {
            assert!(text.contains(metric), "missing {metric} in:\n{text}");
        }
        assert_eq!(system.collector_dropped(), 0);
    }
}
