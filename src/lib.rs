//! CPI²: CPU performance isolation for shared compute clusters — a
//! full-system Rust reproduction of Zhang et al., EuroSys 2013.
//!
//! This facade crate re-exports the whole workspace and provides the
//! [`harness::Cpi2Harness`] that assembles the complete deployment: a
//! simulated shared cluster ([`sim`]), per-cgroup performance-counter
//! sampling ([`perf`]), per-machine detection/amelioration agents
//! ([`core`]), and the aggregation/forensics pipeline ([`pipeline`]),
//! driven by realistic workloads ([`workloads`]).
//!
//! # Quickstart
//!
//! ```
//! use cpi2::harness::Cpi2Harness;
//! use cpi2::sim::{Cluster, ClusterConfig, Platform, JobSpec, SimDuration};
//! use cpi2::core::Cpi2Config;
//! use cpi2::workloads;
//!
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! cluster.add_machines(&Platform::westmere(), 4);
//! cluster
//!     .submit_job(
//!         JobSpec::latency_sensitive("websearch-leaf", 8, 2.0),
//!         true,
//!         workloads::factory("websearch-leaf", 42),
//!     )
//!     .unwrap();
//! let mut system = Cpi2Harness::new(cluster, Cpi2Config::default());
//! system.run_for(SimDuration::from_mins(5));
//! ```

#![warn(missing_docs)]

pub mod harness;

pub use cpi2_core as core;
pub use cpi2_perf as perf;
pub use cpi2_pipeline as pipeline;
pub use cpi2_sim as sim;
pub use cpi2_stats as stats;
pub use cpi2_telemetry as telemetry;
pub use cpi2_workloads as workloads;
