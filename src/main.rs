//! `cpi2` — command-line front end for the CPI² reproduction.
//!
//! ```text
//! cpi2 simulate [--machines N] [--minutes M] [--seed S] [--thrashers T]
//!               [--no-protection] [--placement-feedback]
//! cpi2 forensics [--minutes M] [--seed S] [--query SQL]
//! cpi2 table2
//! cpi2 help
//! ```

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::pipeline::{Dataset, FileLog};
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration};
use cpi2::workloads::{self, CacheThrasher};
use std::process::ExitCode;

/// Minimal flag parser: `--key value` and boolean `--key` pairs.
struct Args {
    items: Vec<String>,
}

impl Args {
    fn new() -> Self {
        Args {
            items: std::env::args().skip(1).collect(),
        }
    }

    #[cfg(test)]
    fn from(items: &[&str]) -> Self {
        Args {
            items: items.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn command(&self) -> Option<&str> {
        self.items.first().map(String::as_str)
    }

    fn value(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.items.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.value(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn flag(&self, key: &str) -> bool {
        self.items.iter().any(|a| a == key)
    }
}

fn usage() {
    println!(
        "cpi2 — CPU performance isolation for shared compute clusters\n\
         (reproduction of Zhang et al., EuroSys 2013)\n\n\
         USAGE:\n\
         \x20 cpi2 simulate [--machines N] [--minutes M] [--seed S] [--thrashers T]\n\
         \x20               [--no-protection] [--placement-feedback] [--log-dir DIR]\n\
         \x20     Run a mixed cluster under CPI² and report incidents & caps;\n\
         \x20     --log-dir persists the incident log as rotated JSONL.\n\n\
         \x20 cpi2 replay --trace FILE [--machines N] [--minutes M] [--seed S]\n\
         \x20     Replay a JSONL job trace (see traces/sample.jsonl) under CPI².\n\n\
         \x20 cpi2 forensics [--minutes M] [--seed S] [--query SQL] [--log-dir DIR]\n\
         \x20     Answer SQL over an incident log — a persisted one\n\
         \x20     (--log-dir) or one produced by a fresh run.\n\n\
         \x20 cpi2 table2\n\
         \x20     Print the paper's Table 2 parameter defaults.\n\n\
         Every table/figure of the paper has a dedicated experiment binary:\n\
         \x20 cargo run -p cpi2-bench --release --bin fig01_tenancy   (... fig16, tab01/02,\n\
         \x20 case1..case6, ablation_params, motivation_quality)"
    );
}

fn cmd_replay(args: &Args) -> ExitCode {
    let Some(path) = args.value("--trace") else {
        eprintln!("replay requires --trace FILE");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = match workloads::parse_trace(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let machines: u32 = args.parsed("--machines", 20);
    let seed: u64 = args.parsed("--seed", 1);
    let horizon_s = jobs
        .iter()
        .map(|j| j.at_s + j.duration_s.unwrap_or(0))
        .max()
        .unwrap_or(0);
    let minutes: i64 = args.parsed("--minutes", horizon_s / 60 + 30);

    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), machines);
    workloads::schedule_trace(&mut cluster, &jobs);
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);

    println!(
        "replaying {} jobs from {path} on {machines} machines for {minutes} min...",
        jobs.len()
    );
    // Spec refresh once the earliest jobs have produced samples.
    system.run_for(SimDuration::from_mins(30));
    let specs = system.force_spec_refresh();
    println!("learned {} specs after 30 min", specs.len());
    system.run_for(SimDuration::from_mins((minutes - 30).max(0)));

    let acted = system
        .incidents()
        .iter()
        .filter(|mi| mi.incident.acted())
        .count();
    println!("\nreplay complete:");
    println!(
        "  incidents: {} ({} acted)",
        system.incidents().len(),
        acted
    );
    println!("  hard caps: {}", system.caps_applied());
    for (job, n, corr) in system.top_antagonists(5) {
        println!("  antagonist {job:<20} capped {n}x (max correlation {corr:.2})");
    }
    ExitCode::SUCCESS
}

fn build_system(args: &Args) -> Cpi2Harness {
    let machines: u32 = args.parsed("--machines", 40);
    let seed: u64 = args.parsed("--seed", 1);
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), machines);
    workloads::submit_typical_mix(&mut cluster, (machines / 40).max(1), seed);
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    if args.flag("--no-protection") {
        system.set_protection_enabled(false);
    }
    if args.flag("--placement-feedback") {
        system.placement_feedback_after = Some(3);
    }
    if !args.flag("--no-victim-migration") {
        // Case-4 remediation is on by default: chronically contended
        // victims with no cappable antagonist move to fresh machines.
        system.migrate_chronic_victims_after = Some(3);
    }
    system
}

/// Warm up, learn specs, then let the antagonists land (specs must reflect
/// normal behaviour — the paper's fleet learns from days of mostly-clean
/// samples before any given interference episode).
fn warm_up_and_inject(system: &mut Cpi2Harness, args: &Args) {
    let seed: u64 = args.parsed("--seed", 1);
    let thrashers: u32 = args.parsed("--thrashers", 6);
    // A full day of warm-up, as the paper's 24-hour spec refresh: the spec
    // σ must absorb the diurnal CPI swing (Fig. 5) or afternoon load peaks
    // masquerade as incidents.
    system.run_for(SimDuration::from_hours(24));
    let specs = system.force_spec_refresh();
    println!("learned {} CPI specs:", specs.len());
    for s in &specs {
        println!("  {s}");
    }
    if thrashers > 0 {
        system
            .cluster
            .submit_job(
                JobSpec::best_effort("thrasher", thrashers, 1.0),
                true,
                Box::new(move |i| Box::new(CacheThrasher::new(8.0, 300, 300, seed ^ i as u64))),
            )
            .ok();
        println!("{thrashers} thrasher task(s) landed on the cluster");
    }
}

fn cmd_simulate(args: &Args) -> ExitCode {
    let minutes: i64 = args.parsed("--minutes", 120);
    let mut system = build_system(args);
    println!(
        "simulating {} machines for {minutes} min (24h spec warm-up first)...",
        system.cluster.machines().len()
    );
    warm_up_and_inject(&mut system, args);
    system.run_for(SimDuration::from_mins(minutes));

    println!("\nresults after {minutes} simulated minutes:");
    let acted = system
        .incidents()
        .iter()
        .filter(|mi| mi.incident.acted())
        .count();
    println!(
        "  incidents reported : {} ({} with a cappable antagonist)",
        system.incidents().len(),
        acted
    );
    println!("  hard caps applied  : {}", system.caps_applied());
    println!("  antagonists moved  : {}", system.migrations_triggered());
    println!(
        "  victims migrated   : {} (chronic contention, Case-4 policy)",
        system.victim_migrations()
    );
    let top = system.top_antagonists(5);
    if !top.is_empty() {
        println!("  top antagonists:");
        for (job, n, corr) in top {
            println!("    {job:<24} capped {n} times (max correlation {corr:.2})");
        }
    }
    let machine_days = system.cluster.machines().len() as f64 * minutes as f64 / (24.0 * 60.0);
    if machine_days > 0.0 {
        println!(
            "  incident rate      : {:.2} per machine-day (paper: 0.37)",
            system.incidents().len() as f64 / machine_days
        );
    }
    if let Some(dir) = args.value("--log-dir") {
        match persist_incidents(&system, dir) {
            Ok(n) => println!("  persisted          : {n} incidents to {dir}/incidents.*.jsonl"),
            Err(e) => eprintln!("  could not persist incidents: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn persist_incidents(system: &Cpi2Harness, dir: &str) -> std::io::Result<usize> {
    let mut log = FileLog::open(dir, "incidents", 4 << 20)?;
    for mi in system.incidents() {
        log.append(&mi.incident)?;
    }
    log.flush()?;
    Ok(system.incidents().len())
}

fn cmd_forensics(args: &Args) -> ExitCode {
    let minutes: i64 = args.parsed("--minutes", 120);
    let default_query = "SELECT victim_job, count(*) FROM incidents \
                         GROUP BY victim_job ORDER BY count(*) DESC LIMIT 10";
    let query = args.value("--query").unwrap_or(default_query);
    let incidents: Vec<cpi2::core::Incident> = if let Some(dir) = args.value("--log-dir") {
        match FileLog::load(dir, "incidents") {
            Ok(v) => v,
            Err(e) => {
                eprintln!("cannot load incident log from {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut system = build_system(args);
        warm_up_and_inject(&mut system, args);
        system.run_for(SimDuration::from_mins(minutes));
        system
            .incidents()
            .iter()
            .map(|mi| mi.incident.clone())
            .collect()
    };
    println!(
        "{} incidents collected; running:\n  {query}\n",
        incidents.len()
    );
    let mut ds = Dataset::new();
    if let Err(e) = ds.insert_records("incidents", &incidents) {
        eprintln!("failed to load incidents: {e}");
        return ExitCode::FAILURE;
    }
    match ds.query(query) {
        Ok(result) => {
            println!("{result}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_table2() -> ExitCode {
    println!("Table 2: CPI2 parameters and their default values\n");
    for (k, v) in Cpi2Config::default().table2_rows() {
        println!("  {k:<34} {v}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = Args::new();
    match args.command() {
        Some("simulate") => cmd_simulate(&args),
        Some("replay") => cmd_replay(&args),
        Some("forensics") => cmd_forensics(&args),
        Some("table2") => cmd_table2(),
        Some("help") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_command_and_values() {
        let a = Args::from(&["simulate", "--machines", "40", "--no-protection"]);
        assert_eq!(a.command(), Some("simulate"));
        assert_eq!(a.value("--machines"), Some("40"));
        assert_eq!(a.parsed("--machines", 0u32), 40);
        assert!(a.flag("--no-protection"));
        assert!(!a.flag("--placement-feedback"));
        assert_eq!(a.parsed("--minutes", 120i64), 120);
    }

    #[test]
    fn args_bad_value_falls_back_to_default() {
        let a = Args::from(&["simulate", "--machines", "lots"]);
        assert_eq!(a.parsed("--machines", 7u32), 7);
    }

    #[test]
    fn args_empty() {
        let a = Args::from(&[]);
        assert_eq!(a.command(), None);
        assert_eq!(a.value("--x"), None);
    }

    #[test]
    fn args_value_at_end_without_operand() {
        let a = Args::from(&["forensics", "--query"]);
        assert_eq!(a.value("--query"), None);
    }
}
