//! Chaos test: hours of random job churn, kills, caps and migrations over
//! the full CPI² stack, asserting global invariants the whole way.

use cpi2::core::{Cpi2Config, IdentifierKind, PandaParams};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, FaultPlan, FaultProfile, JobId, JobSpec, Platform, SimDuration, TaskId,
};
use cpi2::workloads;
use cpi2_stats::rng::SimRng;

const JOB_NAMES: [&str; 8] = [
    "websearch-leaf",
    "bigtable-tablet",
    "storage-server",
    "video-processing",
    "compilation",
    "mapreduce",
    "replayer",
    "bimodal-frontend",
];

fn check_invariants(system: &Cpi2Harness) {
    for m in system.cluster.machines() {
        // Utilization bounded.
        let u = m.utilization();
        assert!((0.0..=1.0 + 1e-9).contains(&u), "{}: utilization {u}", m.id);
        let mut granted = 0.0;
        for t in m.tasks() {
            // Every resident task is locatable through the cluster index.
            assert_eq!(
                system.cluster.locate(t.id),
                Some(m.id),
                "placement index out of sync for {}",
                t.id
            );
            if let Some(o) = t.last_outcome() {
                assert!(o.cpi.is_finite() && o.cpi > 0.0, "{}: cpi {}", t.id, o.cpi);
                assert!(o.cpu_granted >= 0.0);
                granted += o.cpu_granted;
            }
            let c = t.cgroup.counters();
            assert!(c.cycles >= 0.0 && c.instructions >= 0.0);
        }
        assert!(
            granted <= m.platform.cores as f64 + 1e-6,
            "{}: over-allocated {granted}",
            m.id
        );
    }
}

#[test]
fn hours_of_churn_hold_invariants() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 0xC405,
        overcommit: 2.0,
        preempt_starved_batch_after: Some(120),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 10);
    cluster.add_machines(&Platform::sandy_bridge(), 5);

    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.placement_feedback_after = Some(3);
    system.migrate_chronic_victims_after = Some(4);

    let mut rng = SimRng::new(0xD1CE);
    let mut live_jobs: Vec<(JobId, u32)> = Vec::new();

    // 4 simulated hours in 5-minute rounds, one random action per round.
    for round in 0..48u32 {
        match rng.below(5) {
            // Submit a random job.
            0 => {
                let name = JOB_NAMES[rng.below(JOB_NAMES.len() as u64) as usize];
                let tasks = 1 + rng.below(6) as u32;
                let spec = if workloads::is_latency_sensitive(name) {
                    JobSpec::latency_sensitive(name, tasks, 0.5 + rng.f64())
                } else if rng.chance(0.5) {
                    JobSpec::batch(name, tasks, 0.5 + rng.f64())
                } else {
                    JobSpec::best_effort(name, tasks, 0.5 + rng.f64())
                };
                if let Ok(job) = system.cluster.submit_job(
                    spec,
                    name != "mapreduce",
                    workloads::factory(name, round as u64),
                ) {
                    live_jobs.push((job, tasks));
                }
            }
            // Kill a random task.
            1 => {
                if let Some(&(job, tasks)) = live_jobs.last() {
                    let index = rng.below(tasks as u64) as u32;
                    system.cluster.kill_task(TaskId { job, index });
                }
            }
            // Random manual cap.
            2 => {
                if let Some(&(job, tasks)) = live_jobs.first() {
                    let index = rng.below(tasks as u64) as u32;
                    system.operator_cap(
                        TaskId { job, index },
                        0.05 + rng.f64() * 0.5,
                        SimDuration::from_mins(1 + rng.below(10) as i64),
                    );
                }
            }
            // Random migration.
            3 => {
                if !live_jobs.is_empty() {
                    let (job, tasks) = live_jobs[rng.below(live_jobs.len() as u64) as usize];
                    let index = rng.below(tasks as u64) as u32;
                    system.operator_migrate(TaskId { job, index });
                }
            }
            // Toggle protection.
            _ => {
                let on = system.protection_enabled();
                system.set_protection_enabled(!on);
            }
        }
        if round == 6 {
            system.force_spec_refresh();
        }
        system.run_for(SimDuration::from_mins(5));
        check_invariants(&system);
    }

    // The system survived 4 hours of churn; counters and the trace agree
    // on scale.
    let placed: usize = system
        .cluster
        .machines()
        .iter()
        .map(|m| m.task_count())
        .sum();
    assert!(placed > 0, "everything died");
    assert!(
        system.cluster.trace().len() > 10,
        "trace should have history"
    );
}

/// The same churn loop with the heavy fault profile armed on top:
/// crashes, agent restarts, shipment faults and stale spec syncs overlap
/// the operator chaos, and on every round the spec store must stay
/// snapshot-coherent and every agent within the staleness bounds.
#[test]
fn churn_under_faults_holds_invariants() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 0xC406,
        overcommit: 2.0,
        preempt_starved_batch_after: Some(120),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 10);
    cluster.add_machines(&Platform::sandy_bridge(), 5);

    let config = Cpi2Config {
        min_samples_per_task: 5,
        // Run the evidence-accumulating identifier so churn + faults also
        // exercise the PANDA state machine (restart wipes, bounded books).
        identifier: IdentifierKind::Panda,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.set_fault_plan(Some(FaultPlan::new(0xFA_C405, FaultProfile::heavy())));
    let max_pairs = IdentifierKind::Panda
        .panda_params()
        .map(|p| p.max_pairs)
        .unwrap_or(PandaParams::default().max_pairs);

    let mut rng = SimRng::new(0xD1CF);
    let mut live_jobs: Vec<(JobId, u32)> = Vec::new();
    let mut last_version = 0u64;

    // 3 simulated hours in 5-minute rounds, one random action per round.
    for round in 0..36u32 {
        match rng.below(4) {
            0 => {
                let name = JOB_NAMES[rng.below(JOB_NAMES.len() as u64) as usize];
                let tasks = 1 + rng.below(6) as u32;
                let spec = if workloads::is_latency_sensitive(name) {
                    JobSpec::latency_sensitive(name, tasks, 0.5 + rng.f64())
                } else {
                    JobSpec::batch(name, tasks, 0.5 + rng.f64())
                };
                if let Ok(job) = system.cluster.submit_job(
                    spec,
                    name != "mapreduce",
                    workloads::factory(name, round as u64),
                ) {
                    live_jobs.push((job, tasks));
                }
            }
            1 => {
                if let Some(&(job, tasks)) = live_jobs.last() {
                    let index = rng.below(tasks as u64) as u32;
                    system.cluster.kill_task(TaskId { job, index });
                }
            }
            2 => {
                if !live_jobs.is_empty() {
                    let (job, tasks) = live_jobs[rng.below(live_jobs.len() as u64) as usize];
                    let index = rng.below(tasks as u64) as u32;
                    system.operator_migrate(TaskId { job, index });
                }
            }
            _ => {
                if let Some(&(job, tasks)) = live_jobs.first() {
                    let index = rng.below(tasks as u64) as u32;
                    system.operator_cap(
                        TaskId { job, index },
                        0.05 + rng.f64() * 0.5,
                        SimDuration::from_mins(1 + rng.below(10) as i64),
                    );
                }
            }
        }
        if round % 8 == 6 {
            system.force_spec_refresh();
        }
        system.run_for(SimDuration::from_mins(5));
        check_invariants(&system);

        // Spec-store snapshot coherence: no entry is newer than the store
        // version, the version never moves backwards, and a lagged
        // (fault-served) snapshot is never ahead of the current one.
        let snap = system.spec_store.snapshot();
        assert!(
            snap.max_entry_version() <= snap.version(),
            "snapshot holds an entry from the future"
        );
        assert_eq!(snap.version(), system.spec_store.version());
        assert!(
            snap.version() >= last_version,
            "spec store version went backwards: {} -> {}",
            last_version,
            snap.version()
        );
        last_version = snap.version();
        for lag in 0..4 {
            assert!(
                system.spec_store.lagged_snapshot(lag).version() <= snap.version(),
                "lagged snapshot ahead of current at lag {lag}"
            );
        }

        // Agent-cache staleness bounds: an agent never claims a sync
        // version the store has not published. PANDA evidence books stay
        // within their configured pair bound no matter how much churn and
        // how many restarts (which wipe them) the agent absorbed.
        for m in system.cluster.machines() {
            if let Some(v) = system.agent_spec_version(m.id) {
                assert!(
                    v <= system.spec_store.version(),
                    "{}: agent synced to unpublished version {v}",
                    m.id
                );
            }
            if let Some(agent) = system.agent(m.id) {
                assert!(
                    agent.evidence_pairs() <= max_pairs,
                    "{}: evidence book grew past max_pairs ({} > {max_pairs})",
                    m.id,
                    agent.evidence_pairs()
                );
            }
        }
    }

    // The fault layer really ran.
    assert!(system.machine_crashes() > 0, "no crashes in 3 h of heavy");
    assert!(system.agent_restarts() > 0, "no agent restarts fired");
    assert!(system.shipment_faults() > 0, "no shipment faults fired");
    let placed: usize = system
        .cluster
        .machines()
        .iter()
        .map(|m| m.task_count())
        .sum();
    assert!(placed > 0, "everything died");
}
