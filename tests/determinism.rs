//! Parallel execution must be invisible: a seeded run sharded across the
//! worker pool has to produce bit-identical results to the serial path —
//! the same simulator trace tick for tick, and the same published CPI
//! specs out of the aggregation pipeline.
//!
//! Both runs execute with telemetry *enabled*: the metrics layer is
//! observational only, and these tests pin that down — instrumented runs
//! must stay bit-identical across worker counts.

use cpi2::core::{Cpi2Config, CpiSpec, IdentifierKind};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, FaultPlan, FaultProfile, Platform, SimDuration, TraceEntry,
};
use cpi2::telemetry::Telemetry;
use cpi2::workloads;

const MACHINES: u32 = 16;
const SEED: u64 = 0x0DE7_E121;

fn build_system(parallelism: usize) -> Cpi2Harness {
    build_system_with(parallelism, IdentifierKind::Paper)
}

fn build_system_with(parallelism: usize, identifier: IdentifierKind) -> Cpi2Harness {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: SEED,
        overcommit: 2.0,
        parallelism,
        telemetry: Telemetry::enabled(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), MACHINES);
    workloads::submit_typical_mix(&mut cluster, 1, 5);
    let config = Cpi2Config {
        // Hourly refresh so the pipeline publishes several times within a
        // short run.
        spec_refresh_hours: 1,
        min_samples_per_task: 5,
        identifier,
        ..Cpi2Config::default()
    };
    Cpi2Harness::new(cluster, config)
}

/// Runs the full system for a few refresh periods and returns the
/// simulator trace plus everything the pipeline published.
fn run(parallelism: usize) -> (Vec<TraceEntry>, Vec<CpiSpec>, u64, usize) {
    let mut system = build_system(parallelism);
    system.run_for(SimDuration::from_mins(135));
    let trace: Vec<TraceEntry> = system.cluster.trace().entries().cloned().collect();
    let specs = system.spec_store.changed_since(0);
    let version = system.spec_store.version();
    let incidents = system.incidents().len();
    (trace, specs, version, incidents)
}

#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let (serial_trace, serial_specs, serial_version, serial_incidents) = run(1);
    let (par_trace, par_specs, par_version, par_incidents) = run(4);

    // The cluster saw real activity and the pipeline really refreshed —
    // otherwise equality below would be vacuous.
    assert!(!serial_trace.is_empty(), "trace empty: workload never ran");
    assert!(
        !serial_specs.is_empty(),
        "no specs published: refresh never fired"
    );
    assert!(serial_version >= 2, "expected several refresh periods");

    assert_eq!(
        serial_trace, par_trace,
        "simulator trace diverged between parallelism 1 and 4"
    );
    assert_eq!(
        serial_specs, par_specs,
        "published CPI specs diverged between parallelism 1 and 4"
    );
    assert_eq!(serial_version, par_version);
    assert_eq!(serial_incidents, par_incidents);
}

#[test]
fn parallelism_beyond_machine_count_is_identical_too() {
    // More workers than machines degrades to fewer shards, never to
    // different results.
    let (t1, s1, _, _) = run(1);
    let (t2, s2, _, _) = run(64);
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
}

/// A full faulty run: trace, published specs, incident stream and fault
/// counters, for one parallelism level.
fn run_faulty(parallelism: usize) -> (Vec<TraceEntry>, Vec<CpiSpec>, Vec<String>, [u64; 3]) {
    let mut system = build_system(parallelism);
    system.set_fault_plan(Some(FaultPlan::new(SEED, FaultProfile::heavy())));
    system.run_for(SimDuration::from_mins(135));
    (
        system.cluster.trace().entries().cloned().collect(),
        system.spec_store.changed_since(0),
        system.incident_lines(),
        [
            system.agent_restarts(),
            system.machine_crashes(),
            system.shipment_faults(),
        ],
    )
}

/// A faulty run with the PANDA identifier enabled: trace, incident lines
/// and the agents' total evidence-book size, per parallelism level.
fn run_panda(parallelism: usize) -> (Vec<TraceEntry>, Vec<CpiSpec>, Vec<String>, usize) {
    let mut system = build_system_with(parallelism, IdentifierKind::Panda);
    system.set_fault_plan(Some(FaultPlan::new(SEED, FaultProfile::lossy())));
    system.run_for(SimDuration::from_mins(135));
    let evidence: usize = system
        .cluster
        .machines()
        .iter()
        .filter_map(|m| system.agent(m.id))
        .map(|a| a.evidence_pairs())
        .sum();
    (
        system.cluster.trace().entries().cloned().collect(),
        system.spec_store.changed_since(0),
        system.incident_lines(),
        evidence,
    )
}

#[test]
fn panda_identifier_is_bit_identical_across_parallelism() {
    // The PANDA evidence book is per-agent BTreeMap state updated only
    // from that machine's own incident stream; sharding machines across
    // workers must not change what any book accumulates — nor, therefore,
    // any confidence score or incident line.
    let (trace_1, specs_1, incidents_1, evidence_1) = run_panda(1);
    let (trace_4, specs_4, incidents_4, evidence_4) = run_panda(4);
    let (trace_64, specs_64, incidents_64, evidence_64) = run_panda(64);

    assert_eq!(trace_1, trace_4, "panda trace diverged at parallelism 4");
    assert_eq!(trace_1, trace_64, "panda trace diverged at parallelism 64");
    assert_eq!(specs_1, specs_4);
    assert_eq!(specs_1, specs_64);
    assert_eq!(incidents_1, incidents_4);
    assert_eq!(incidents_1, incidents_64);
    assert_eq!(evidence_1, evidence_4);
    assert_eq!(evidence_1, evidence_64);
}

/// FNV-1a over the Debug/line renderings of everything a faulty run
/// produces. Collapses a full run into one pinnable number.
fn run_digest(parallelism: usize) -> u64 {
    let (trace, specs, incidents, counts) = run_faulty(parallelism);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in &trace {
        eat(format!("{e:?}").as_bytes());
    }
    for s in &specs {
        eat(format!("{s:?}").as_bytes());
    }
    for line in &incidents {
        eat(line.as_bytes());
    }
    eat(format!("{counts:?}").as_bytes());
    h
}

/// Digest of the pinned-seed heavy-fault run, captured on the
/// array-of-structs tick implementation immediately before the
/// struct-of-arrays refactor. Any change to simulation arithmetic,
/// iteration order, or RNG draw order shows up here as a different
/// number — the refactor is only done when this stays green.
const GOLDEN_HEAVY_FAULT_DIGEST: u64 = 0x11BB_5F26_ECE1_E623;

#[test]
fn heavy_fault_run_matches_pre_refactor_golden_digest() {
    for parallelism in [1, 4, 64] {
        assert_eq!(
            run_digest(parallelism),
            GOLDEN_HEAVY_FAULT_DIGEST,
            "heavy-fault golden digest changed at parallelism {parallelism} \
             (simulation output is no longer bit-identical to the pinned run)"
        );
    }
}

#[test]
fn faulty_run_is_bit_identical_across_parallelism() {
    // Fault injection draws are keyed on (machine, sim time), never on
    // execution order — so crashes, restarts and shipment faults must
    // land identically whether machines run serially or sharded.
    let (trace_1, specs_1, incidents_1, counts_1) = run_faulty(1);
    let (trace_4, specs_4, incidents_4, counts_4) = run_faulty(4);
    let (trace_64, specs_64, incidents_64, counts_64) = run_faulty(64);

    // The heavy profile really fired inside the 135-minute run —
    // otherwise the equalities below would be vacuous.
    assert!(counts_1[0] > 0, "no agent restarts fired");
    assert!(counts_1[1] > 0, "no machine crashes fired");
    assert!(counts_1[2] > 0, "no shipment faults fired");

    assert_eq!(
        trace_1, trace_4,
        "faulty trace diverged between parallelism 1 and 4"
    );
    assert_eq!(
        trace_1, trace_64,
        "faulty trace diverged between parallelism 1 and 64"
    );
    assert_eq!(specs_1, specs_4);
    assert_eq!(specs_1, specs_64);
    assert_eq!(incidents_1, incidents_4);
    assert_eq!(incidents_1, incidents_64);
    assert_eq!(counts_1, counts_4);
    assert_eq!(counts_1, counts_64);
}
