//! End-to-end integration tests: the full CPI² deployment (simulated
//! cluster + counter sampling + agents + pipeline) detecting and
//! ameliorating real interference.

use cpi2::core::{Cpi2Config, IncidentAction, JobKey};
use cpi2::harness::Cpi2Harness;
use cpi2::pipeline::Dataset;
use cpi2::sim::ResourceProfile;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration, TaskId, TraceEvent};
use cpi2::workloads::{self, CacheThrasher, LsService, MapReduceWorker};

/// Test config: paper parameters, but spec eligibility relaxed so a short
/// warm-up builds usable specs.
fn test_config() -> Cpi2Config {
    Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    }
}

/// Six machines each hosting one task of a latency-sensitive serving job
/// (spec building needs ≥5 similar tasks; spreading them keeps the learned
/// spec free of self-contention, as in a real cluster).
fn victim_cluster(seed: u64) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("frontend", 6, 1.0),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.0,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    cluster
}

/// Mean CPI of the victim job's tasks over the trailing samples.
fn victim_cpi_now(system: &Cpi2Harness) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for m in system.cluster.machines() {
        for t in m.tasks() {
            if t.job_name == "frontend" {
                if let Some(o) = t.last_outcome() {
                    sum += o.cpi;
                    n += 1;
                }
            }
        }
    }
    sum / n.max(1) as f64
}

#[test]
fn detects_caps_and_restores_victim() {
    let mut system = Cpi2Harness::new(victim_cluster(7), test_config());

    // Phase 1: warm up alone and learn the spec.
    system.run_for(SimDuration::from_mins(30));
    let specs = system.force_spec_refresh();
    assert!(
        specs.iter().any(|s| s.jobname == "frontend"),
        "warm-up must produce a frontend spec, got {specs:?}"
    );
    let baseline = victim_cpi_now(&system);

    // Phase 2: a bursty best-effort cache thrasher lands on the machine.
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 1, 1.0),
            true,
            Box::new(|_| Box::new(CacheThrasher::new(8.0, 300, 300, 99))),
        )
        .expect("placement");
    system.run_for(SimDuration::from_mins(40));

    // CPI² must have detected the interference and capped the thrasher.
    assert!(
        !system.incidents().is_empty(),
        "expected incidents to be reported"
    );
    assert!(system.caps_applied() >= 1, "expected at least one hard cap");
    let acted: Vec<_> = system
        .incidents()
        .iter()
        .filter(|mi| mi.incident.acted())
        .collect();
    assert!(!acted.is_empty(), "expected an acted incident");
    for mi in &acted {
        match &mi.incident.action {
            IncidentAction::HardCap {
                target_job,
                cpu_rate,
                ..
            } => {
                assert_eq!(target_job, "thrasher", "wrong antagonist blamed");
                // Best-effort jobs get the 0.01 CPU-sec/sec cap (§5).
                assert_eq!(*cpu_rate, 0.01);
            }
            IncidentAction::None { .. } => unreachable!("filtered to acted"),
        }
        assert_eq!(mi.incident.victim_job, "frontend");
        let top = mi.incident.top_suspect().expect("suspects listed");
        assert!(top.correlation >= 0.35);
    }

    // While the cap is in force the victim's CPI returns toward baseline.
    let thrasher_task = TaskId {
        job: system
            .cluster
            .jobs()
            .find(|(_, s)| s.name == "thrasher")
            .unwrap()
            .0,
        index: 0,
    };
    let m = system.cluster.locate(thrasher_task).unwrap();
    let capped_now = system
        .cluster
        .machine(m)
        .unwrap()
        .task(thrasher_task)
        .unwrap()
        .cgroup
        .hard_cap(system.cluster.now())
        .is_some();
    if capped_now {
        let during = victim_cpi_now(&system);
        assert!(
            during < baseline * 1.5,
            "victim CPI {during} should be near baseline {baseline} while capped"
        );
    }
}

#[test]
fn specs_propagate_to_agents() {
    let mut system = Cpi2Harness::new(victim_cluster(11), test_config());
    system.run_for(SimDuration::from_mins(20));
    system.force_spec_refresh();
    // Agents sync lazily at their next sample.
    system.run_for(SimDuration::from_mins(2));
    let machine = system.cluster.machines()[0].id;
    let agent = system.agent(machine).expect("agent instantiated");
    let key = JobKey::new("frontend", "westmere-2.6GHz");
    let spec = agent.spec(&key).expect("spec installed on agent");
    assert!(spec.robust());
    assert!(
        spec.cpi_mean > 0.5 && spec.cpi_mean < 4.0,
        "{}",
        spec.cpi_mean
    );
}

#[test]
fn bimodal_service_triggers_no_false_alarm() {
    // Case 3: the victim's CPI swings are self-inflicted and happen at low
    // CPU usage; the min-usage filter must suppress any incident.
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.add_machines(&Platform::westmere(), 1);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("bimodal-frontend", 6, 0.5),
            true,
            workloads::factory("bimodal-frontend", 5),
        )
        .unwrap();
    let mut system = Cpi2Harness::new(cluster, test_config());
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_hours(1));
    assert_eq!(
        system.caps_applied(),
        0,
        "no caps may result from self-inflicted CPI swings"
    );
}

#[test]
fn mapreduce_antagonist_exits_under_capping() {
    // Case 6: the capped antagonist is a MapReduce worker that gives up
    // under prolonged starvation; the cluster trace records a capped exit.
    let mut cluster = victim_cluster(23);
    cluster
        .submit_job(
            JobSpec::batch("mapreduce", 1, 1.0),
            false,
            Box::new(|_| Box::new(MapReduceWorker::new(3).with_starvation_limit(120))),
        )
        .unwrap();
    let mut system = Cpi2Harness::new(cluster, test_config());
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_hours(2));

    if system.caps_applied() == 0 {
        // The worker may idle through windows on some seeds; the essential
        // assertion is conditional on a cap having been applied.
        eprintln!("note: no cap applied in this run");
        return;
    }
    let exited_capped = system
        .cluster
        .trace()
        .entries()
        .any(|e| matches!(e.event, TraceEvent::TaskExited { capped: true, .. }));
    assert!(
        exited_capped,
        "a capped MapReduce worker should eventually exit"
    );
}

#[test]
fn forensics_queries_run_over_incident_log() {
    let mut system = Cpi2Harness::new(victim_cluster(31), test_config());
    system.run_for(SimDuration::from_mins(20));
    system.force_spec_refresh();
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 1, 1.0),
            true,
            Box::new(|_| Box::new(CacheThrasher::new(8.0, 300, 300, 17))),
        )
        .unwrap();
    system.run_for(SimDuration::from_hours(1));
    assert!(!system.incidents().is_empty());

    // §5: SQL-like forensics over the logged incidents.
    let incidents: Vec<_> = system
        .incidents()
        .iter()
        .map(|mi| mi.incident.clone())
        .collect();
    let mut ds = Dataset::new();
    ds.insert_records("incidents", &incidents).unwrap();
    let r = ds
        .query(
            "SELECT victim_job, count(*) FROM incidents \
             GROUP BY victim_job ORDER BY count(*) DESC LIMIT 5",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "frontend");
    // Top suspects by correlation.
    let r = ds
        .query(
            "SELECT suspects.0.jobname, max(suspects.0.correlation) FROM incidents \
             GROUP BY suspects.0.jobname",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
}
