//! Fault-injection end-to-end tests: the CPI² stack under deterministic
//! injected failures — shipment loss, agent restarts, machine crashes and
//! stale spec syncs — must keep detecting real interference, degrade
//! conservatively, and never corrupt state.
//!
//! The acceptance bar is the paper's own resilience story (§4.1): local
//! detection runs on the machine and survives pipeline degradation, so a
//! lossy collection path costs spec freshness, not protection.

use cpi2::core::{Cpi2Config, IncidentAction};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, FaultPlan, FaultProfile, JobSpec, Platform, ResourceProfile,
    SimDuration,
};
use cpi2::telemetry::Telemetry;
use cpi2::workloads::{CacheThrasher, LsService};

fn test_config() -> Cpi2Config {
    Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    }
}

/// Six machines, one latency-sensitive "frontend" task each (the spec
/// needs ≥5 similar tasks), with telemetry on so degraded-mode decisions
/// are observable.
fn victim_cluster(seed: u64) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        telemetry: Telemetry::enabled(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("frontend", 6, 1.0),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.0,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    cluster
}

fn plant_thrasher(system: &mut Cpi2Harness, seed: u64) {
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 1, 1.0),
            true,
            Box::new(move |_| Box::new(CacheThrasher::new(8.0, 300, 300, seed))),
        )
        .expect("placement");
}

/// The headline acceptance test: 10% shipment loss (plus delays,
/// duplications and hourly agent restarts — the `lossy` profile) must not
/// stop the system from catching a planted antagonist.
#[test]
fn detects_antagonist_under_lossy_pipeline() {
    let mut system = Cpi2Harness::new(victim_cluster(7), test_config());
    system.set_fault_plan(Some(FaultPlan::new(0xFA17, FaultProfile::lossy())));

    // Warm up and learn the spec — already under shipment faults, which
    // the aggregation path must absorb (retry, dedup, delay reordering).
    system.run_for(SimDuration::from_mins(30));
    let specs = system.force_spec_refresh();
    assert!(
        specs.iter().any(|s| s.jobname == "frontend"),
        "lossy warm-up still must produce a frontend spec, got {specs:?}"
    );

    plant_thrasher(&mut system, 99);
    system.run_for(SimDuration::from_mins(90));

    // Faults actually fired (hourly restarts over 2 h; ~10% of batches).
    assert!(system.shipment_faults() > 0, "no shipment faults injected");
    assert!(system.agent_restarts() > 0, "no agent restarts injected");
    assert_eq!(system.machine_crashes(), 0, "lossy profile never crashes");

    // ... and detection still worked: incidents, caps, correct blame.
    assert!(
        !system.incidents().is_empty(),
        "expected incidents despite the lossy pipeline"
    );
    assert!(system.caps_applied() >= 1, "expected at least one hard cap");
    let acted: Vec<_> = system
        .incidents()
        .iter()
        .filter(|mi| mi.incident.acted())
        .collect();
    assert!(!acted.is_empty(), "expected an acted incident");
    for mi in &acted {
        if let IncidentAction::HardCap { target_job, .. } = &mi.incident.action {
            assert_eq!(target_job, "thrasher", "wrong antagonist blamed");
        }
        assert_eq!(mi.incident.victim_job, "frontend");
    }
}

/// A spec past its TTL flips the agent into conservative detection; every
/// decision taken in that mode is visible in telemetry.
#[test]
fn stale_specs_degrade_conservatively() {
    let config = Cpi2Config {
        spec_ttl_hours: 1,
        ..test_config()
    };
    let mut system = Cpi2Harness::new(victim_cluster(13), config);

    // Learn and publish once (stamped with sim time), then run past the
    // 1 h TTL with no further refresh (the next natural one is at 24 h).
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_mins(100));

    let text = system
        .telemetry()
        .prometheus_text()
        .expect("telemetry enabled");
    let degraded = text
        .lines()
        .find(|l| l.starts_with("cpi_agent_degraded_decisions_total"))
        .unwrap_or_else(|| panic!("no degraded-decision metric in:\n{text}"));
    let count: f64 = degraded
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("metric value");
    assert!(
        count > 0.0,
        "specs aged past the TTL but no decision was marked degraded: {degraded}"
    );
}

/// The heavy profile adds machine crashes: resident tasks die and respawn,
/// the agent's window restarts cleanly, and cluster invariants hold.
#[test]
fn survives_machine_crashes_and_keeps_state_coherent() {
    let mut system = Cpi2Harness::new(victim_cluster(29), test_config());
    system.set_fault_plan(Some(FaultPlan::new(0xC4A5, FaultProfile::heavy())));

    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_mins(60));

    assert!(system.machine_crashes() > 0, "heavy profile must crash");
    assert!(system.agent_restarts() > 0);

    // Post-crash coherence: every resident task is locatable, the
    // restart-on-exit victim job is back to full strength, and no agent
    // is ahead of the spec store.
    let mut frontend_tasks = 0;
    for m in system.cluster.machines() {
        for t in m.tasks() {
            assert_eq!(system.cluster.locate(t.id), Some(m.id));
            if t.job_name == "frontend" {
                frontend_tasks += 1;
            }
        }
        if let Some(v) = system.agent_spec_version(m.id) {
            assert!(v <= system.spec_store.version());
        }
    }
    assert_eq!(frontend_tasks, 6, "crashed frontend tasks must respawn");
}

/// Shipment faults shift spec freshness, never correctness: the aggregator
/// dedups duplicated batches and the retry queue bounds its memory.
#[test]
fn pipeline_hardening_bounds_degradation() {
    let mut system = Cpi2Harness::new(victim_cluster(43), test_config());
    system.set_fault_plan(Some(FaultPlan::new(0xDE_D0B, FaultProfile::lossy())));
    system.run_for(SimDuration::from_mins(45));

    // Duplicated shipments were injected and the idempotent ingest caught
    // real replays (dedup is exercised end-to-end, not just in unit tests).
    assert!(system.shipment_faults() > 0);
    assert!(
        system.aggregator.duplicates_dropped() > 0,
        "expected the aggregator to drop at least one replayed batch"
    );
    // Nothing leaked: the retry queue never grows without bound.
    assert!(
        system.shipments_pending_retry() <= 8,
        "retry queue grew unexpectedly: {}",
        system.shipments_pending_retry()
    );
}
