//! Golden-trace regression tests: a fixed-seed end-to-end run must
//! reproduce the committed incident stream byte for byte — victim,
//! antagonist, action and time. Any behavioural drift in the sampling,
//! detection, correlation or capping path shows up as a fixture diff.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! then review the fixture diff like any other code change.

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, FaultPlan, FaultProfile, JobSpec, Platform, ResourceProfile,
    SimDuration,
};
use cpi2::workloads::{CacheThrasher, LsService};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); generate with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, actual,
        "incident stream diverged from the golden fixture {name}; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 and \
         review the diff"
    );
}

/// The fixed scenario behind both fixtures: six machines, a
/// latency-sensitive victim job, a planted cache thrasher.
fn run_scenario(seed: u64, faults: Option<FaultProfile>) -> String {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("frontend", 6, 1.0),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.0,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    let mut system = Cpi2Harness::new(
        cluster,
        Cpi2Config {
            min_samples_per_task: 5,
            ..Cpi2Config::default()
        },
    );
    if let Some(profile) = faults {
        system.set_fault_plan(Some(FaultPlan::new(seed, profile)));
    }

    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 1, 1.0),
            true,
            Box::new(|_| Box::new(CacheThrasher::new(8.0, 300, 300, 99))),
        )
        .expect("placement");
    system.run_for(SimDuration::from_mins(45));

    let mut out = system.incident_lines().join("\n");
    out.push_str(&format!(
        "\n# caps_applied={} agent_restarts={} machine_crashes={} shipment_faults={}\n",
        system.caps_applied(),
        system.agent_restarts(),
        system.machine_crashes(),
        system.shipment_faults(),
    ));
    out
}

#[test]
fn golden_incident_stream_clean() {
    check_golden("golden_incidents_clean.txt", &run_scenario(0x601D, None));
}

#[test]
fn golden_incident_stream_lossy() {
    check_golden(
        "golden_incidents_lossy.txt",
        &run_scenario(0x601D, Some(FaultProfile::lossy())),
    );
}
