//! Per-platform CPI specs: §3.1's "CPI² does separate CPI calculations for
//! each platform a job runs on", exercised across a two-platform cluster.

use cpi2::core::{Cpi2Config, JobKey};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::LsService;

fn two_platform_system(seed: u64) -> Cpi2Harness {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    cluster.add_machines(&Platform::sandy_bridge(), 6);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("frontend", 12, 1.2),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    Cpi2Harness::new(cluster, config)
}

#[test]
fn one_job_two_platform_specs() {
    let mut system = two_platform_system(1);
    system.run_for(SimDuration::from_mins(40));
    let specs = system.force_spec_refresh();

    // Tasks landed on both platforms (12 tasks over 12 machines).
    let westmere = specs
        .iter()
        .find(|s| s.jobname == "frontend" && s.platforminfo == "westmere-2.6GHz");
    let sandy = specs
        .iter()
        .find(|s| s.jobname == "frontend" && s.platforminfo == "sandybridge-2.2GHz");
    let (Some(w), Some(s)) = (westmere, sandy) else {
        // The spread may have put <5 tasks on one platform; that platform
        // then (correctly) gets no spec. Require at least one.
        assert!(
            westmere.is_some() || sandy.is_some(),
            "no spec built at all: {specs:?}"
        );
        return;
    };

    // The newer platform runs the same binary at a lower CPI
    // (cpi_factor 0.85), and the specs must reflect it.
    assert!(
        s.cpi_mean < w.cpi_mean,
        "sandy bridge {:.2} should beat westmere {:.2}",
        s.cpi_mean,
        w.cpi_mean
    );
    let expected_ratio = 0.85;
    let ratio = s.cpi_mean / w.cpi_mean;
    assert!(
        (ratio - expected_ratio).abs() < 0.12,
        "CPI ratio {ratio:.2} should be near the platform factor {expected_ratio}"
    );
}

#[test]
fn agents_use_their_platforms_spec() {
    let mut system = two_platform_system(2);
    system.run_for(SimDuration::from_mins(40));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_mins(2));

    // Each machine's agent should hold the spec for *its* platform key
    // (agents receive all specs; the lookup key carries the platform).
    for m in system.cluster.machines() {
        if m.task_count() == 0 {
            continue;
        }
        let Some(agent) = system.agent(m.id) else {
            continue;
        };
        let key = JobKey::new("frontend", m.platform.name.clone());
        if let Some(spec) = agent.spec(&key) {
            assert_eq!(spec.platforminfo, m.platform.name);
        }
    }
}

#[test]
fn cross_platform_outlier_not_misjudged() {
    // A westmere task at its normal CPI (~1.4) would be a huge outlier
    // against a sandy-bridge spec (~1.19): platform-keyed specs prevent
    // exactly this misjudgement. Verify a clean two-platform run raises no
    // incidents.
    let mut system = two_platform_system(3);
    system.run_for(SimDuration::from_mins(40));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_hours(1));
    assert_eq!(
        system.incidents().len(),
        0,
        "clean heterogeneous cluster must not page: {:?}",
        system.incidents().first().map(|mi| &mi.incident.victim_job)
    );
}
