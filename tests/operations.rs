//! Integration tests for the operator interface (§5) and the automatic
//! antagonist-aware placement of §9's future work.

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, ConstantLoad, JobSpec, Platform, ResourceProfile, SimDuration, TaskId,
    TraceEvent,
};
use cpi2::workloads::{CacheThrasher, LsService};

fn test_config() -> Cpi2Config {
    Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    }
}

fn victim_cluster(seed: u64) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("frontend", 6, 1.0),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.0,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    cluster
}

/// Injects a 3-task thrasher job so at least one task lands next to a
/// victim regardless of the scheduler's random spread. Returns the task
/// that is co-resident with a frontend task.
fn inject_thrasher(system: &mut Cpi2Harness, seed: u64) -> TaskId {
    let job = system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 3, 1.0),
            true,
            Box::new(move |i| Box::new(CacheThrasher::new(8.0, 300, 300, seed ^ i as u64))),
        )
        .expect("placement");
    for index in 0..3 {
        let t = TaskId { job, index };
        if let Some(m) = system.cluster.locate(t) {
            let machine = system.cluster.machine(m).unwrap();
            if machine.tasks().any(|r| r.job_name == "frontend") {
                return t;
            }
        }
    }
    panic!("no thrasher co-located with a frontend task");
}

#[test]
fn protection_toggle_gates_caps() {
    let mut system = Cpi2Harness::new(victim_cluster(1), test_config());
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    inject_thrasher(&mut system, 5);

    // Protection off: incidents flow, caps do not.
    system.set_protection_enabled(false);
    assert!(!system.protection_enabled());
    system.run_for(SimDuration::from_mins(40));
    assert!(!system.incidents().is_empty(), "detection must continue");
    assert_eq!(system.caps_applied(), 0, "caps must be gated off");

    // Protection back on: the next incident caps.
    system.set_protection_enabled(true);
    system.run_for(SimDuration::from_mins(40));
    assert!(system.caps_applied() >= 1, "caps resume when enabled");
}

#[test]
fn operator_manual_cap_and_migrate() {
    let mut system = Cpi2Harness::new(victim_cluster(2), test_config());
    system.set_protection_enabled(false); // Manual operation only.
    system.run_for(SimDuration::from_mins(26));
    system.force_spec_refresh();
    let thrasher = inject_thrasher(&mut system, 7);
    system.run_for(SimDuration::from_mins(5));

    // Manual cap.
    assert!(system.operator_cap(thrasher, 0.05, SimDuration::from_mins(5)));
    system.run_for(SimDuration::from_mins(1));
    let m = system.cluster.locate(thrasher).unwrap();
    let out = system
        .cluster
        .machine(m)
        .unwrap()
        .task(thrasher)
        .unwrap()
        .last_outcome()
        .copied()
        .unwrap();
    assert!(
        out.cpu_granted <= 0.051,
        "cap must bite: {}",
        out.cpu_granted
    );

    // Manual migration: the old task is gone, a replacement exists with a
    // fresh index (3, since the job submitted tasks 0-2).
    let new_machine = system.operator_migrate(thrasher).expect("migrates");
    assert!(system.cluster.locate(thrasher).is_none());
    let replacement = TaskId {
        job: thrasher.job,
        index: 3,
    };
    assert_eq!(system.cluster.locate(replacement), Some(new_machine));
    // Capping a dead task fails cleanly.
    assert!(!system.operator_cap(thrasher, 0.05, SimDuration::from_mins(5)));
}

#[test]
fn top_antagonists_aggregation() {
    let mut system = Cpi2Harness::new(victim_cluster(3), test_config());
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    inject_thrasher(&mut system, 11);
    system.run_for(SimDuration::from_hours(1));
    let top = system.top_antagonists(5);
    assert!(!top.is_empty(), "expected at least one antagonist row");
    assert_eq!(top[0].0, "thrasher");
    assert!(top[0].1 >= 1);
    assert!(top[0].2 >= 0.35);
}

#[test]
fn placement_feedback_learns_anti_affinity() {
    let mut system = Cpi2Harness::new(victim_cluster(4), test_config());
    system.placement_feedback_after = Some(2);
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    let thrasher = inject_thrasher(&mut system, 13);
    system.run_for(SimDuration::from_hours(2));

    assert!(
        system.migrations_triggered() >= 1,
        "repeat offender should have been migrated"
    );
    let migrated = system
        .cluster
        .trace()
        .entries()
        .any(|e| matches!(e.event, TraceEvent::TaskMigrated { .. }));
    assert!(migrated, "trace should record the migration");

    // After learning, the thrasher's job and the victim job never share a
    // machine again.
    system.run_for(SimDuration::from_mins(30));
    for m in system.cluster.machines() {
        let has_victim = m.tasks().any(|t| t.job_name == "frontend");
        let has_thrasher = m.tasks().any(|t| t.job_name == "thrasher");
        assert!(
            !(has_victim && has_thrasher),
            "anti-affinity violated on {}",
            m.id
        );
    }
    let _ = thrasher;
}

#[test]
fn placement_feedback_off_by_default() {
    let mut system = Cpi2Harness::new(victim_cluster(5), test_config());
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    inject_thrasher(&mut system, 17);
    system.run_for(SimDuration::from_hours(1));
    assert_eq!(system.migrations_triggered(), 0);
}

#[test]
fn constant_hog_detected_weakly() {
    // A perfectly steady antagonist gives the passive correlation little
    // signal (§4.2's design tradeoff): usage mass is spread across high-
    // and low-CPI windows alike. The system may or may not clear 0.35 —
    // assert only that no *innocent* job is capped.
    let mut system = Cpi2Harness::new(victim_cluster(6), test_config());
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    system
        .cluster
        .submit_job(
            JobSpec::batch("steady", 1, 1.0),
            true,
            Box::new(|_| Box::new(ConstantLoad::new(6.0, 8, ResourceProfile::streaming()))),
        )
        .expect("placement");
    system.run_for(SimDuration::from_hours(1));
    for mi in system.incidents() {
        if let cpi2::core::IncidentAction::HardCap { target_job, .. } = &mi.incident.action {
            assert_eq!(
                target_job, "steady",
                "only the real antagonist may be capped"
            );
        }
    }
}
