//! Pipeline integration: samples flowing through the collector (threaded),
//! the aggregation service's refresh cadence, age weighting across
//! periods, and spec distribution via the versioned store.

use cpi2::core::{Cpi2Config, CpiSample, JobKey, TaskClass, TaskHandle};
use cpi2::pipeline::{AgentMessage, Aggregator, Collector, SpecStore};
use std::sync::Arc;
use std::thread;

fn sample(task: u64, minute: i64, cpi: f64) -> CpiSample {
    CpiSample {
        task: TaskHandle(task),
        jobname: "svc".into(),
        platforminfo: "westmere".into(),
        timestamp: minute * 60_000_000,
        cpu_usage: 1.0,
        cpi,
        l3_mpki: 1.0,
        class: TaskClass::latency_sensitive(),
    }
}

fn test_config() -> Cpi2Config {
    Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    }
}

#[test]
fn threaded_agents_to_spec_store() {
    // 8 "machine agent" threads each stream 25 minutes of samples for
    // 4 tasks into one collector.
    let mut collector = Collector::new(4096);
    let handles: Vec<_> = (0..8u64)
        .map(|machine| {
            let tx = collector.handle();
            thread::spawn(move || {
                for minute in 0..25 {
                    let batch: Vec<CpiSample> = (0..4)
                        .map(|t| sample(machine * 10 + t, minute, 1.8 + 0.01 * t as f64))
                        .collect();
                    assert!(tx.send(AgentMessage::Samples(batch)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    collector.drain();
    let samples = collector.take_samples();
    assert_eq!(samples.len(), 8 * 25 * 4);

    // Aggregate and publish.
    let store = SpecStore::new();
    let mut agg = Aggregator::new(test_config(), 0);
    agg.ingest(&samples);
    let specs = agg.refresh_now(&store);
    assert_eq!(specs.len(), 1);
    let spec = store.get(&JobKey::new("svc", "westmere")).unwrap();
    assert_eq!(spec.num_samples, 800);
    assert!((spec.cpi_mean - 1.815).abs() < 0.01);
}

#[test]
fn age_weighting_across_refreshes() {
    let store = SpecStore::new();
    let mut agg = Aggregator::new(test_config(), 0);

    // Five periods at CPI 1.5.
    for _ in 0..5 {
        for t in 0..6u64 {
            for m in 0..10 {
                agg.ingest(&[sample(t, m, 1.5)]);
            }
        }
        agg.refresh_now(&store);
    }
    let before = store.get(&JobKey::new("svc", "westmere")).unwrap();
    assert!((before.cpi_mean - 1.5).abs() < 1e-6);

    // One period at CPI 2.1: age weighting pulls the spec toward recent
    // behaviour but keeps history.
    for t in 0..6u64 {
        for m in 0..10 {
            agg.ingest(&[sample(t, m, 2.1)]);
        }
    }
    agg.refresh_now(&store);
    let after = store.get(&JobKey::new("svc", "westmere")).unwrap();
    assert!(
        after.cpi_mean > 1.55,
        "moved toward recent: {}",
        after.cpi_mean
    );
    assert!(
        after.cpi_mean < 2.05,
        "history retained: {}",
        after.cpi_mean
    );
}

#[test]
fn spec_store_delta_distribution() {
    let store = Arc::new(SpecStore::new());
    let mut agg = Aggregator::new(test_config(), 0);
    for t in 0..6u64 {
        for m in 0..10 {
            agg.ingest(&[sample(t, m, 1.5)]);
        }
    }
    agg.refresh_now(&store);

    // An agent that synced at version v sees nothing new until the next
    // publish, then exactly the changed spec.
    let v = store.version();
    assert!(store.changed_since(v).is_empty());
    for t in 0..6u64 {
        for m in 0..10 {
            agg.ingest(&[sample(t, m, 1.6)]);
        }
    }
    agg.refresh_now(&store);
    let delta = store.changed_since(v);
    assert_eq!(delta.len(), 1);
    assert_eq!(delta[0].key(), JobKey::new("svc", "westmere"));
}

#[test]
fn refresh_cadence_follows_config() {
    let store = SpecStore::new();
    let mut config = test_config();
    config.spec_refresh_hours = 1;
    let mut agg = Aggregator::new(config, 0);
    for t in 0..6u64 {
        for m in 0..10 {
            agg.ingest(&[sample(t, m, 1.5)]);
        }
    }
    let hour_us = 3_600_000_000i64;
    assert!(agg.maybe_refresh(hour_us - 1, &store).is_none());
    assert!(agg.maybe_refresh(hour_us, &store).is_some());
    assert!(agg.maybe_refresh(hour_us + 60_000_000, &store).is_none());
    assert!(agg.maybe_refresh(2 * hour_us, &store).is_some());
}

#[test]
fn incident_messages_collected() {
    use cpi2::core::{Incident, IncidentAction};
    let mut collector = Collector::new(64);
    let tx = collector.handle();
    let incident = Incident {
        at: 0,
        victim: TaskHandle(1),
        victim_job: "svc".into(),
        victim_cpi: 4.0,
        cthreshold: 2.0,
        suspects: vec![],
        action: IncidentAction::None {
            reason: "test".into(),
        },
        identifier: cpi2::core::IdentifierKind::Paper,
        trace_id: cpi2::core::TraceId::derive(1, 0),
    };
    assert!(tx.send(AgentMessage::Incidents(vec![incident.clone()])));
    collector.drain();
    let got = collector.take_incidents();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0], incident);
}
