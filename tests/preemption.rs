//! Integration test for the §2 scheduler behaviour: "If the scheduler
//! guesses wrong, it may need to preempt a batch task and move it to
//! another machine."

use cpi2::sim::{
    Cluster, ClusterConfig, ConstantLoad, JobSpec, Platform, ResourceProfile, SimDuration, TaskId,
    TraceEvent,
};

/// Builds a cluster where one machine is overcommitted: LS jobs eat all
/// cores, starving the co-resident batch task, while another machine sits
/// idle.
fn overcommitted_cluster(preempt_after: Option<u32>) -> (Cluster, TaskId) {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 3,
        overcommit: 2.0,
        preempt_starved_batch_after: preempt_after,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 1); // 12 cores.

    // The batch job lands first (speculative overcommit says yes).
    let batch = cluster
        .submit_job(
            JobSpec::batch("batch", 1, 2.0),
            true,
            Box::new(|_| Box::new(ConstantLoad::new(4.0, 8, ResourceProfile::streaming()))),
        )
        .unwrap();
    // Then LS demand shows up and takes the whole machine.
    cluster
        .submit_job(
            JobSpec::latency_sensitive("serving", 3, 4.0),
            true,
            Box::new(|_| Box::new(ConstantLoad::new(4.5, 16, ResourceProfile::cache_heavy()))),
        )
        .unwrap();
    // A second, empty machine appears (capacity freed elsewhere).
    cluster.add_machines(&Platform::westmere(), 1);
    (
        cluster,
        TaskId {
            job: batch,
            index: 0,
        },
    )
}

#[test]
fn starved_batch_task_is_preempted_and_moved() {
    let (mut cluster, batch_task) = overcommitted_cluster(Some(30));
    let first_machine = cluster.locate(batch_task).unwrap();
    cluster.run_for(SimDuration::from_mins(3));

    // The original task was preempted; its replacement lives on the
    // second machine and gets real CPU there.
    assert!(
        cluster.locate(batch_task).is_none(),
        "starved batch task should have been preempted"
    );
    let migrated = cluster
        .trace()
        .entries()
        .any(|e| matches!(e.event, TraceEvent::TaskMigrated { task, .. } if task == batch_task));
    assert!(
        migrated,
        "trace should record the preemption as a migration"
    );
    let replacement = TaskId {
        job: batch_task.job,
        index: 1,
    };
    let new_machine = cluster.locate(replacement).expect("replacement placed");
    assert_ne!(new_machine, first_machine);
    let out = cluster
        .machine(new_machine)
        .unwrap()
        .task(replacement)
        .unwrap()
        .last_outcome()
        .copied()
        .unwrap();
    assert!(
        out.cpu_granted > 3.0,
        "replacement should run freely, got {}",
        out.cpu_granted
    );
}

#[test]
fn preemption_disabled_leaves_task_starving() {
    let (mut cluster, batch_task) = overcommitted_cluster(None);
    cluster.run_for(SimDuration::from_mins(3));
    let machine = cluster.locate(batch_task).expect("still in place");
    let t = cluster.machine(machine).unwrap().task(batch_task).unwrap();
    assert!(t.starved_ticks() > 100, "task should be starving");
    let out = t.last_outcome().copied().unwrap();
    assert!(out.cpu_granted < 0.4, "got {}", out.cpu_granted);
}

#[test]
fn latency_sensitive_tasks_never_preempted() {
    // Two LS jobs fighting over one machine: neither may be preempted even
    // with the policy on.
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 5,
        preempt_starved_batch_after: Some(10),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 1);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("a", 2, 6.0),
            true,
            Box::new(|_| Box::new(ConstantLoad::new(8.0, 8, ResourceProfile::compute_bound()))),
        )
        .unwrap();
    cluster.add_machines(&Platform::westmere(), 1);
    cluster.run_for(SimDuration::from_mins(2));
    let moved = cluster
        .trace()
        .entries()
        .any(|e| matches!(e.event, TraceEvent::TaskMigrated { .. }));
    assert!(!moved, "LS tasks must not be preempted");
}

#[test]
fn scheduled_events_fire_in_order() {
    use cpi2::sim::ConstantLoad;
    use cpi2::sim::{ClusterEvent, SimTime};

    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.add_machines(&Platform::westmere(), 2);
    // The batch job arrives at t=60s via the event queue; at t=120s it is
    // hard-capped; at t=180s killed.
    cluster.schedule_event(
        SimTime::from_secs(60),
        ClusterEvent::SubmitJob {
            spec: JobSpec::batch("late", 1, 1.0),
            restart_on_exit: false,
            factory: Box::new(|_| {
                Box::new(ConstantLoad::new(2.0, 4, ResourceProfile::streaming()))
            }),
        },
    );
    cluster.run_for(SimDuration::from_secs(59));
    assert!(cluster.jobs().all(|(_, s)| s.name != "late"));
    cluster.run_for(SimDuration::from_secs(2));
    let (job, _) = cluster
        .jobs()
        .find(|(_, s)| s.name == "late")
        .expect("arrived");
    let task = TaskId { job, index: 0 };
    assert!(cluster.locate(task).is_some());

    cluster.schedule_event(
        SimTime::from_secs(120),
        ClusterEvent::HardCap {
            task,
            cpu_rate: 0.05,
            until: SimTime::from_secs(600),
        },
    );
    cluster.schedule_event(SimTime::from_secs(180), ClusterEvent::KillTask(task));
    cluster.run_for(SimDuration::from_secs(65));
    let m = cluster.locate(task).unwrap();
    let out = cluster
        .machine(m)
        .unwrap()
        .task(task)
        .unwrap()
        .last_outcome()
        .copied()
        .unwrap();
    assert!(out.capped, "cap event should have fired");
    cluster.run_for(SimDuration::from_secs(60));
    assert!(
        cluster.locate(task).is_none(),
        "kill event should have fired"
    );
    assert_eq!(cluster.pending_events(), 0);
}
