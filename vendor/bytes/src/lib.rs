//! Offline stand-in for `bytes`: reference-counted immutable byte buffers
//! and an appendable builder, backed by `Arc<Vec<u8>>` / `Vec<u8>`.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// An appendable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Append operations (the slice of the real `BufMut` this repo uses).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::new();
        b.put_slice(b"ab");
        b.put_u8(b'c');
        let f = b.freeze();
        assert_eq!(&*f, b"abc");
        assert_eq!(f.len(), 3);
        assert_eq!(f.iter().filter(|&&b| b == b'a').count(), 1);
    }
}
