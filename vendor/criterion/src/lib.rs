//! Offline stand-in for `criterion`.
//!
//! Provides the subset used by this workspace's benches: [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput::Elements`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple adaptive wall-clock loop (no statistics, no plots): each
//! benchmark runs until it accumulates enough samples for a stable
//! mean, then prints `ns/iter` and optional throughput.

use std::time::{Duration, Instant};

/// How much work one routine invocation represents, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Routine processes this many logical elements per invocation.
    Elements(u64),
    /// Routine processes this many bytes per invocation.
    Bytes(u64),
}

/// Hint for how expensive `iter_batched` setup inputs are. Ignored here;
/// every invocation gets a fresh input either way.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Target time to spend measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(100);
const WARMUP_BUDGET: Duration = Duration::from_millis(20);

/// Per-invocation timer driven by [`Criterion::bench_function`].
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    ns_per_iter: f64,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            ns_per_iter: 0.0,
            iterations: 0,
        }
    }

    /// Times `routine` in an adaptive loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        while total < MEASURE_BUDGET {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }

    /// Times `routine` with a fresh `setup()` input per invocation;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < MEASURE_BUDGET {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            total += start.elapsed();
            std::hint::black_box(out);
            iters += 1;
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.ns_per_iter;
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (ns / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.0} B/s)", n as f64 / (ns / 1e9))
        }
        None => String::new(),
    };
    println!(
        "bench {name:<55} {time}/iter{rate}  [{} iters]",
        b.iterations
    );
}

/// A named batch of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the work-per-invocation used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        let full = format!("{}/{}", self.name, id.into());
        report(&full, &b, self.throughput);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&id.into(), &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Re-export parity with the real crate (`criterion::black_box`).
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(41u64) + 1);
        assert!(b.ns_per_iter > 0.0);
        assert!(b.iterations > 0);
    }

    #[test]
    fn iter_batched_measures_something() {
        let mut b = Bencher::new();
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.ns_per_iter > 0.0);
    }
}
