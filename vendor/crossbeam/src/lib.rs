//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`channel`] — MPMC bounded/unbounded channels (a `Mutex<VecDeque>` +
//!   `Condvar` queue; both ends clonable, like crossbeam's).
//! * [`thread`] — scoped threads, delegating to `std::thread::scope`
//!   (stabilized in Rust 1.63, after crossbeam's API was designed).

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        readable: Condvar,
        capacity: Option<usize>,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error for [`Sender::send`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error for [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half (clonable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half (clonable — the channel is MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    /// Creates a bounded MPMC channel.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity))
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends without blocking; fails when full or disconnected.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// when every receiver is dropped.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if let Some(cap) = self.shared.capacity {
                if q.items.len() >= cap {
                    return Err(TrySendError::Full(item));
                }
            }
            q.items.push_back(item);
            self.shared.readable.notify_one();
            Ok(())
        }

        /// Sends, failing only on disconnect. A full bounded channel in this
        /// stand-in does not block the sender; the queue grows past capacity
        /// (callers in this workspace use [`Sender::try_send`] on hot paths).
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver is dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.receivers == 0 {
                return Err(SendError(item));
            }
            q.items.push_back(item);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.senders -= 1;
            if q.senders == 0 {
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when drained with no senders left.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.items.pop_front() {
                Some(item) => Ok(item),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receives, blocking until a message or disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when drained with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .readable
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

/// Scoped threads.
pub mod thread {
    /// A scope handle able to spawn threads borrowing from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (crossbeam
        /// convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow local data.
    /// All spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Matches crossbeam's signature; `std::thread::scope` propagates child
    /// panics by panicking, so this never actually returns `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};

    #[test]
    fn mpmc_flow() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv().unwrap(), 1);
        let rx2 = rx.clone();
        assert_eq!(rx2.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
    }

    #[test]
    fn scoped_threads_sum() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
