//! Offline stand-in for `libc`, exposing only the symbols the optional
//! `linux-perf` feature of `cpi2-perf` touches. Bindings are declared
//! against the system C library, exactly as the real crate does.
#![allow(non_camel_case_types, non_upper_case_globals)]

pub type c_int = i32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type c_void = std::ffi::c_void;
pub type pid_t = i32;
pub type size_t = usize;
pub type ssize_t = isize;
pub type time_t = i64;
pub type suseconds_t = i64;

/// `getrusage` target: the calling process.
pub const RUSAGE_SELF: c_int = 0;

/// `perf_event_open(2)` syscall number on x86_64 Linux.
#[cfg(target_arch = "x86_64")]
pub const SYS_perf_event_open: c_long = 298;
/// `perf_event_open(2)` syscall number on aarch64 Linux.
#[cfg(target_arch = "aarch64")]
pub const SYS_perf_event_open: c_long = 241;
/// Fallback syscall number for other architectures (generic syscall table).
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_perf_event_open: c_long = 241;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timeval {
    pub tv_sec: time_t,
    pub tv_usec: suseconds_t,
}

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct rusage {
    pub ru_utime: timeval,
    pub ru_stime: timeval,
    pub ru_maxrss: c_long,
    pub ru_ixrss: c_long,
    pub ru_idrss: c_long,
    pub ru_isrss: c_long,
    pub ru_minflt: c_long,
    pub ru_majflt: c_long,
    pub ru_nswap: c_long,
    pub ru_inblock: c_long,
    pub ru_oublock: c_long,
    pub ru_msgsnd: c_long,
    pub ru_msgrcv: c_long,
    pub ru_nsignals: c_long,
    pub ru_nvcsw: c_long,
    pub ru_nivcsw: c_long,
}

extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
    pub fn getrusage(who: c_int, usage: *mut rusage) -> c_int;
}
