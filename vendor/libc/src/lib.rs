//! Offline stand-in for `libc`, exposing only the symbols the optional
//! `linux-perf` feature of `cpi2-perf` and the `cpi2-serve` readiness
//! event loop touch. Bindings are declared against the system C
//! library, exactly as the real crate does.
#![allow(non_camel_case_types, non_upper_case_globals)]

pub type c_int = i32;
pub type c_short = i16;
pub type c_long = i64;
pub type c_ulong = u64;
pub type c_void = std::ffi::c_void;
pub type pid_t = i32;
pub type size_t = usize;
pub type ssize_t = isize;
pub type time_t = i64;
pub type suseconds_t = i64;

/// `getrusage` target: the calling process.
pub const RUSAGE_SELF: c_int = 0;

/// `poll(2)` readiness flags (asm-generic values, shared by x86_64 and
/// aarch64 Linux).
pub const POLLIN: c_short = 0x001;
pub const POLLOUT: c_short = 0x004;
pub const POLLERR: c_short = 0x008;
pub const POLLHUP: c_short = 0x010;
pub const POLLNVAL: c_short = 0x020;

/// `getrlimit`/`setrlimit` resource: open file descriptors.
pub const RLIMIT_NOFILE: c_int = 7;

/// Count type for `poll(2)`'s fd array.
pub type nfds_t = c_ulong;
/// Resource-limit value type.
pub type rlim_t = u64;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct rlimit {
    pub rlim_cur: rlim_t,
    pub rlim_max: rlim_t,
}

/// `perf_event_open(2)` syscall number on x86_64 Linux.
#[cfg(target_arch = "x86_64")]
pub const SYS_perf_event_open: c_long = 298;
/// `perf_event_open(2)` syscall number on aarch64 Linux.
#[cfg(target_arch = "aarch64")]
pub const SYS_perf_event_open: c_long = 241;
/// Fallback syscall number for other architectures (generic syscall table).
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_perf_event_open: c_long = 241;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timeval {
    pub tv_sec: time_t,
    pub tv_usec: suseconds_t,
}

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct rusage {
    pub ru_utime: timeval,
    pub ru_stime: timeval,
    pub ru_maxrss: c_long,
    pub ru_ixrss: c_long,
    pub ru_idrss: c_long,
    pub ru_isrss: c_long,
    pub ru_minflt: c_long,
    pub ru_majflt: c_long,
    pub ru_nswap: c_long,
    pub ru_inblock: c_long,
    pub ru_oublock: c_long,
    pub ru_msgsnd: c_long,
    pub ru_msgrcv: c_long,
    pub ru_nsignals: c_long,
    pub ru_nvcsw: c_long,
    pub ru_nivcsw: c_long,
}

extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
    pub fn getrusage(who: c_int, usage: *mut rusage) -> c_int;
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}
