//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the parking_lot API (no lock
//! poisoning: a poisoned std lock panics here, which matches parking_lot's
//! behaviour of not propagating poison).

use std::fmt;
use std::sync::{self, Condvar as StdCondvar};

/// A mutex whose `lock` cannot fail.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
