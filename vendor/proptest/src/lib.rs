//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the API this workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range
//! and `any::<T>()` strategies, `prop::collection::vec`, `prop::option::of`,
//! simple `[a-z]{1,8}`-style string patterns, and the `prop_assert*` /
//! `prop_assume!` macros. Inputs are drawn from a deterministic RNG; failing
//! cases are reported without shrinking.

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assume!` precondition did not hold; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic generator (SplitMix64) so runs are reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Run configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// `generate` produces one value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).generate(rng) as f32
        }
    }

    /// `&str` strategies interpret a small regex subset:
    /// one character class (`[a-z]`, `[ -~]`, `[abc]`) with an optional
    /// `{m,n}` repetition. Anything unparseable falls back to a short
    /// lowercase ASCII string.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) =
                parse_pattern(self).unwrap_or_else(|| (('a'..='z').collect(), 1, 8));
            let len = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                if lo > hi {
                    return None;
                }
                chars.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((chars, 1, 1));
        }
        let body = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = match body.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let k = body.trim().parse().ok()?;
                (k, k)
            }
        };
        Some((chars, m, n))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "anything" strategy (see [`crate::arbitrary::any`]).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; keep magnitudes practical for numeric code.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, ...
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`: `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of the real crate's `prop::` re-exports.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Seed from the test name so cases differ across tests but are
            // stable across runs.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x1_0000_01b3);
            }
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            let mut passed = 0u32;
            let mut attempts = 0u32;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(1000),
                    "proptest {}: too many rejected cases",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}",)* ""),
                    $(&$arg,)*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\ninputs:{}",
                            stringify!($name),
                            passed,
                            msg,
                            inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let p = crate::strategy::Strategy::generate(&"[ -~]{0,60}", &mut rng);
        assert!(p.len() <= 60);
        assert!(p.chars().all(|c| (' '..='~').contains(&c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 1..300u32, y in -1e6..1e6f64, b in any::<bool>()) {
            prop_assert!((1..300).contains(&x));
            prop_assert!((-1e6..1e6).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_and_option(v in prop::collection::vec(0.0..1.0f64, 2..10), o in prop::option::of(1..5u8)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            if let Some(k) = o {
                prop_assert!((1..5).contains(&k));
            }
        }

        #[test]
        fn assume_skips(n in 0..100u64) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_map(p in (0.1..2.0f64, 1..4u8).prop_map(|(a, b)| a * b as f64)) {
            prop_assert!(p > 0.0 && p < 8.0);
        }
    }
}
