//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the real serde cannot be vendored. This crate provides the small slice of
//! the serde surface the workspace actually uses, backed by a concrete JSON
//! value model instead of serde's visitor architecture:
//!
//! * [`Serialize`] / [`Deserialize`] traits (`to_value` / `from_value`)
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate, including `#[serde(default)]` and
//!   `#[serde(with = "module")]` field attributes
//! * [`de::DeserializeOwned`]
//!
//! The wire format (externally tagged enums, newtype unwrapping, maps as
//! objects) follows serde_json conventions so the encoded output looks like
//! what the real stack would produce.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// Builds a number from a float; `None` for non-finite values (JSON
    /// cannot represent them).
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number(N::F(f)))
        } else {
            None
        }
    }

    /// Builds a number from a signed integer.
    pub fn from_i64(i: i64) -> Number {
        Number(N::I(i))
    }

    /// Builds a number from an unsigned integer.
    pub fn from_u64(u: u64) -> Number {
        Number(N::U(u))
    }

    /// Float view (always available; integers are converted).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::I(i) => Some(i as f64),
            N::U(u) => Some(u as f64),
            N::F(f) => Some(f),
        }
    }

    /// Signed-integer view, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(i) => Some(i),
            N::U(u) => i64::try_from(u).ok(),
            N::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            N::F(_) => None,
        }
    }

    /// Unsigned-integer view, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I(i) => u64::try_from(i).ok(),
            N::U(u) => Some(u),
            N::F(f) if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            N::F(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::I(i) => write!(f, "{i}"),
            N::U(u) => write!(f, "{u}"),
            N::F(x) => {
                if x == x.trunc() && x.abs() < 1e16 {
                    // Keep a float marker so the value round-trips as float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// The JSON data model all (de)serialization goes through.
///
/// Objects preserve insertion order (like serde_json's `preserve_order`
/// feature) so encoded output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key → value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Float view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the JSON [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the JSON [`Value`] model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Mirror of `serde::de`.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Owned deserialization (no borrowed data in this model, so every
    /// [`Deserialize`] type qualifies).
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------- derive support ------

/// Object field lookup for derived `Deserialize` impls: missing fields read
/// as `null` (so `Option` fields tolerate omission, like real serde).
#[doc(hidden)]
pub fn get_or_null<'a>(v: &'a Value, name: &str) -> &'a Value {
    v.get(name).unwrap_or(&Value::Null)
}

/// Typed object field extraction for derived `Deserialize` impls.
#[doc(hidden)]
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    T::from_value(get_or_null(v, name)).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

/// `#[serde(default)]` variant of [`from_field`].
#[doc(hidden)]
pub fn from_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(T::default()),
        Some(x) => T::from_value(x).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
    }
}

// ------------------------------------------------------- primitive impls --

macro_rules! int_impls {
    ($($t:ty => $to:ident / $from:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$to(*self as _))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.$from()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

int_impls! {
    i8 => from_i64 / as_i64,
    i16 => from_i64 / as_i64,
    i32 => from_i64 / as_i64,
    i64 => from_i64 / as_i64,
    isize => from_i64 / as_i64,
    u8 => from_u64 / as_u64,
    u16 => from_u64 / as_u64,
    u32 => from_u64 / as_u64,
    u64 => from_u64 / as_u64,
    usize => from_u64 / as_u64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Number::from_f64(*self).map_or(Value::Null, Value::Number)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const L: usize> Serialize for [T; L] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const L: usize> Deserialize for [T; L] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; L]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::from_value(
                    a.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
