//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no syn/quote available
//! offline). Supports non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants), with the `#[serde(default)]` and
//! `#[serde(with = "module")]` field attributes. The generated impls target
//! the concrete `to_value`/`from_value` model of the stand-in `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    default: bool,
    with: Option<String>,
}

#[derive(Debug)]
struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: Body,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// -------------------------------------------------------------- parsing ---

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Consumes a run of `#[...]` attributes, extracting serde field attrs.
    fn attrs(&mut self) -> FieldAttrs {
        let mut out = FieldAttrs::default();
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            parse_attr_body(g.stream(), &mut out);
                        }
                        other => panic!("serde_derive: expected [...] after #, got {other:?}"),
                    }
                }
                _ => return out,
            }
        }
    }

    /// Consumes `pub`, `pub(...)` if present.
    fn visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    /// Skips tokens up to (and including) a top-level comma, tracking angle
    /// brackets so commas inside generic arguments don't terminate early.
    fn skip_past_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_attr_body(ts: TokenStream, out: &mut FieldAttrs) {
    let mut c = Cursor::new(ts);
    match c.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return, // #[doc], #[derive], #[cfg] etc. — not ours.
    }
    let Some(TokenTree::Group(g)) = c.next() else {
        return;
    };
    let mut inner = Cursor::new(g.stream());
    while !inner.at_end() {
        let key = inner.ident();
        match key.as_str() {
            "default" => out.default = true,
            "with" => {
                match inner.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                    other => panic!("serde_derive: expected = after with, got {other:?}"),
                }
                match inner.next() {
                    Some(TokenTree::Literal(l)) => {
                        let s = l.to_string();
                        out.with = Some(s.trim_matches('"').to_string());
                    }
                    other => panic!("serde_derive: expected string after with =, got {other:?}"),
                }
            }
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        // Skip a separating comma if present.
        if let Some(TokenTree::Punct(p)) = inner.peek() {
            if p.as_char() == ',' {
                inner.next();
            }
        }
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<NamedField> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.attrs();
        if c.at_end() {
            break;
        }
        c.visibility();
        let name = c.ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected : after field `{name}`, got {other:?}"),
        }
        c.skip_past_comma();
        fields.push(NamedField { name, attrs });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0;
    while !c.at_end() {
        c.attrs();
        if c.at_end() {
            break;
        }
        c.visibility();
        count += 1;
        c.skip_past_comma();
    }
    count
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.attrs();
    c.visibility();
    let kind = c.ident();
    let name = c.ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline stand-in");
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = c.next() else {
                panic!("serde_derive: expected enum body");
            };
            let mut vc = Cursor::new(g.stream());
            let mut variants = Vec::new();
            while !vc.at_end() {
                vc.attrs();
                if vc.at_end() {
                    break;
                }
                let vname = vc.ident();
                let body = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vc.next();
                        Body::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        vc.next();
                        Body::Tuple(n)
                    }
                    _ => Body::Unit,
                };
                vc.skip_past_comma();
                variants.push(Variant { name: vname, body });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

// -------------------------------------------------------------- codegen ---

fn ser_named_fields(fields: &[NamedField], access: &str) -> String {
    let mut entries = String::new();
    for f in fields {
        let expr = match &f.attrs.with {
            Some(m) => format!("{m}::to_value(&{access}{f})", f = f.name),
            None => format!("::serde::Serialize::to_value(&{access}{f})", f = f.name),
        };
        entries.push_str(&format!(
            "(::std::string::String::from(\"{n}\"), {expr}),",
            n = f.name
        ));
    }
    format!("::serde::Value::Object(::std::vec![{entries}])")
}

fn de_named_fields(fields: &[NamedField]) -> String {
    let mut inits = String::new();
    for f in fields {
        let expr = if let Some(m) = &f.attrs.with {
            format!(
                "{m}::from_value(::serde::get_or_null(__v, \"{n}\"))?",
                n = f.name
            )
        } else if f.attrs.default {
            format!("::serde::from_field_or_default(__v, \"{n}\")?", n = f.name)
        } else {
            format!("::serde::from_field(__v, \"{n}\")?", n = f.name)
        };
        inits.push_str(&format!("{n}: {expr},", n = f.name));
    }
    inits
}

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let body_expr = match body {
                Body::Unit => "::serde::Value::Null".to_string(),
                Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Body::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                }
                Body::Named(fields) => ser_named_fields(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                    fn to_value(&self) -> ::serde::Value {{ {body_expr} }}\
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
                    )),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                (::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds = binds.join(",")
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = ser_named_fields(fields, "*");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                (::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds = binds.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                    fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\
                }}"
            )
        }
    }
}

fn derive_deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let body_code = match body {
                Body::Unit => format!("Ok({name})"),
                Body::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Body::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(__a.get({i})\
                                 .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __a = __v.as_array()\
                         .ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\
                         Ok({name}({items}))",
                        items = items.join(",")
                    )
                }
                Body::Named(fields) => {
                    format!(
                        "if __v.as_object().is_none() {{\
                            return Err(::serde::Error::custom(\"expected object for {name}\"));\
                         }}\
                         Ok({name} {{ {inits} }})",
                        inits = de_named_fields(fields)
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                    fn from_value(__v: &::serde::Value) \
                        -> ::std::result::Result<Self, ::serde::Error> {{ {body_code} }}\
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),"))
                    }
                    Body::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(\
                            ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Body::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__a.get({i})\
                                     .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\
                                let __a = __inner.as_array()\
                                    .ok_or_else(|| ::serde::Error::custom(\"expected array\"))?;\
                                return Ok({name}::{vn}({items}));\
                             }}",
                            items = items.join(",")
                        ));
                    }
                    Body::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let expr = if let Some(m) = &f.attrs.with {
                                format!(
                                    "{m}::from_value(::serde::get_or_null(__inner, \"{n}\"))?",
                                    n = f.name
                                )
                            } else if f.attrs.default {
                                format!(
                                    "::serde::from_field_or_default(__inner, \"{n}\")?",
                                    n = f.name
                                )
                            } else {
                                format!("::serde::from_field(__inner, \"{n}\")?", n = f.name)
                            };
                            inits.push_str(&format!("{n}: {expr},", n = f.name));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {inits} }}),"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\
                    fn from_value(__v: &::serde::Value) \
                        -> ::std::result::Result<Self, ::serde::Error> {{\
                        if let ::std::option::Option::Some(__s) = __v.as_str() {{\
                            match __s {{ {unit_arms} _ => {{}} }}\
                        }}\
                        if let ::std::option::Option::Some(__obj) = __v.as_object() {{\
                            if __obj.len() == 1 {{\
                                let (__tag, __inner) = &__obj[0];\
                                let _ = __inner;\
                                match __tag.as_str() {{ {tagged_arms} _ => {{}} }}\
                            }}\
                        }}\
                        Err(::serde::Error::custom(\"unrecognized value for enum {name}\"))\
                    }}\
                }}"
            )
        }
    }
}

/// Derives `serde::Serialize` (offline stand-in model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (offline stand-in model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
