//! Offline stand-in for `serde_json`.
//!
//! Encodes/decodes the stand-in `serde` crate's [`Value`] model as JSON
//! text. Floats print with Rust's shortest-roundtrip formatting, so the
//! `float_roundtrip` feature of the real crate is effectively always on.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value to its JSON [`Value`] form.
///
/// # Errors
///
/// Infallible in this model, but keeps the real crate's signature.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a JSON [`Value`].
///
/// # Errors
///
/// Fails when the value's shape doesn't match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Infallible in this model, but keeps the real crate's signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to JSON bytes.
///
/// # Errors
///
/// Infallible in this model, but keeps the real crate's signature.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a typed value from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

/// Parses a typed value from JSON bytes.
///
/// # Errors
///
/// Fails on non-UTF-8 input, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// -------------------------------------------------------------- writer ----

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        let float_fallback = |text: &str| -> Result<Number, Error> {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::custom(format!("bad number '{text}'")))?;
            Number::from_f64(f).ok_or_else(|| Error::custom("non-finite number"))
        };
        let n = if is_float {
            float_fallback(text)?
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Number::from_i64(i),
                // Magnitude beyond i64: keep the value as a float.
                Err(_) => float_fallback(text)?,
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Number::from_u64(u),
                Err(_) => float_fallback(text)?,
            }
        };
        Ok(Value::Number(n))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!("expected , or ] got {other:?}")));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!("expected , or }} got {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
    }

    #[test]
    fn float_roundtrips_precisely() {
        for &f in &[0.1, 1.0 / 3.0, 2.5e-17, 1e300, -0.0] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn nested_value_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.5 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
